"""The compiled NumPy backend: lowered IR -> Python source -> kernel.

The tree-walking :class:`~repro.runtime.interpreter.Interpreter` is the
project's *instrumented* path — it counts every FLOP and byte for the
roofline model, at the price of a dict lookup, an env copy, and a
bounds check per IR node visit.  This module is the *fast* path: it
walks the lowered statement once at compile time and emits plain Python
source in which

* serial/parallel/unrolled loops become native ``for`` loops,
* vector expressions become vectorized NumPy — a stride-1 ramp load
  turns into a slice ``data[base:base+n]``, a broadcast into
  ``np.full``, a constant-stride ramp into a precomputed ``np.arange``
  offset table,
* tensor intrinsics (``tile_matmul``, ``wmma.mma.sync``, the shuffle
  constructors, ...) dispatch to the same functional cores the target
  simulators use (:func:`repro.targets.amx.tdpbf16ps`,
  :func:`repro.targets.wmma.mma_sync`, ...), and
* anything the emitter does not recognize falls back to the
  interpreter's handler for that node, so the compiled backend is
  never *less* capable, only faster.

Each emitted operation mirrors the interpreter's NumPy semantics
operation-for-operation (same dtypes, same rounding, same cast rules),
so the two backends produce identical outputs; the parity test suite
asserts this for every application.  What the compiled path deliberately
drops is instrumentation: no counters, no footprint masks, no bounds
checks.  Runs that request :class:`~repro.runtime.counters.Counters`
are routed to the interpreter by the executor.

Kernels are memoized in :mod:`.kernel_cache`, keyed on a structural
fingerprint of the lowered statement.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ..ir import expr as E
from ..ir import stmt as S
from ..ir.expr import EXPR_CHILDREN
from ..ir.stmt import ForKind
from ..ir.types import TypeCode
from ..ir.analysis import free_variables
from ..hardboiled.intrinsics import (
    kway_interleave,
    multiphase_matrix,
    tile_compact,
    tile_expand,
    toeplitz_from_kernel,
)
from ..targets.amx import tdpbf16ps
from ..targets.bfloat16 import round_to_bfloat16
from ..targets.dp4a import dp4a_mac
from ..targets.wmma import check_shape as wmma_check_shape
from ..targets.wmma import mma_sync
from .buffer import Buffer, StackedBuffer
from .interpreter import (
    as_vector,
    broadcast_value,
    ramp_value,
    reduce_groups,
    tile_index,
)


class CodegenError(RuntimeError):
    """Raised when a statement cannot be compiled (emitter falls back)."""


# -- runtime helpers injected into every kernel's globals ----------------------
#
# The vector-semantics cores (ramp_value, broadcast_value, as_vector,
# reduce_groups) are the *same objects* the interpreter evaluates with —
# parity between the backends holds by construction, not by keeping two
# copies in sync.  The helpers below mirror the remaining interpreter
# code paths (casts, stores, condition collapsing).


def _bf16(value):
    """Mirror of the interpreter's bfloat16 cast/store rounding."""
    return round_to_bfloat16(np.asarray(value, dtype=np.float32))


def _ident(value):
    return value


def _store_wrap(buf: Buffer):
    """Store-value transform for a buffer whose dtype is only known at
    run time (pipeline inputs/outputs)."""
    if buf.dtype.code is TypeCode.BFLOAT:
        return _bf16
    return _ident


def _cond(c):
    """Mirror of ``Interpreter._exec_IfThenElse`` condition collapsing."""
    if isinstance(c, np.ndarray):
        return bool(c.all())
    return bool(c)


def _idx(x):
    return np.asarray(x, dtype=np.int64)


# -- arena plumbing ------------------------------------------------------------
#
# Kernels receive an optional BufferArena (see repro.runtime.plan): the
# steady-state serving path passes one so Allocate storage is pooled and
# derived operands (tile index grids, weight shuffle matrices) are
# cached across calls.  With arena=None — a plain CompiledPipeline.run —
# every helper below degrades to the exact uncached behavior, and the
# cached variants are bit-identical by construction (same functions,
# same inputs), so both modes produce the same outputs.


def _take(arena, name, dtype, extents, memory_type):
    """Allocate scope entry: a fresh zeroed buffer, pooled when possible."""
    if arena is None:
        return Buffer(
            name, dtype, extents, memory_type=memory_type, is_external=False
        )
    return arena.take(name, dtype, extents, memory_type)


def _give(arena, buf):
    """Allocate scope exit: recycle the buffer into the arena's pool."""
    if arena is not None:
        arena.give(buf)


def _tile_idx(arena, base, stride, rows, cols):
    """``tile_index`` with the base-0 grid cached per geometry."""
    if arena is None:
        return tile_index(base, stride, rows, cols)
    return arena.tile_grid(stride, rows, cols) + base


def _cast_f(value, np_dtype):
    """Mirror of ``Interpreter._eval_Cast`` for float targets."""
    if isinstance(value, np.ndarray):
        return value.astype(np_dtype)
    return np_dtype.type(value)


def _cast_i(value, np_dtype):
    """Mirror of ``Interpreter._eval_Cast`` for int/uint/bool targets."""
    if isinstance(value, np.ndarray):
        if value.dtype.kind == "f":
            return np.trunc(value).astype(np_dtype)
        return value.astype(np_dtype)
    return int(value)


# -- value-level intrinsics ----------------------------------------------------
#
# The interpreter dispatches intrinsic Calls through handlers that
# receive (interp, call, env) and re-walk the argument expressions.  The
# compiled backend evaluates the arguments itself (buffer-name StringImm
# arguments become Buffer objects) and calls a value-level function.
# The numeric cores are the *same* functions the target simulators use.
#
# Every function takes the kernel's arena first (None outside a plan);
# the ones whose work is re-derivable from small immutable inputs —
# tile index grids and the weight-shuffle matrices — cache through it,
# keyed on the source *values* so changed weights can never hit stale
# entries.  Memoized results are treated as immutable by every caller
# (they are operands or right-hand sides, never written through).


def _v_tile_zero(arena, rows, cols):
    return np.zeros(rows * cols, dtype=np.float32)


def _v_tile_load(arena, buf, base, stride, rows, cols):
    idx = _tile_idx(arena, base, stride, rows, cols)
    return buf.data[idx].astype(np.float32, copy=False)


def _v_tile_matmul(arena, c, a, b, m, n, k):
    return tdpbf16ps(
        np.asarray(c, np.float32).reshape(m, n),
        np.asarray(a, np.float32).reshape(m, k),
        np.asarray(b, np.float32).reshape(k // 2, 2 * n),
    ).ravel()


def _v_tile_store(arena, buf, base, stride, rows, cols, tile):
    idx = _tile_idx(arena, base, stride, rows, cols)
    values = np.asarray(tile, dtype=buf.data.dtype)
    if buf.dtype.code is TypeCode.BFLOAT:
        values = round_to_bfloat16(values)
    buf.data[idx] = values
    return np.float32(0.0)


def _v_dp4a_zero(arena, rows, cols):
    return np.zeros(rows * cols, dtype=np.int32)


def _v_dp4a_load(arena, buf, base, stride, rows, cols):
    idx = _tile_idx(arena, base, stride, rows, cols)
    return buf.data[idx].astype(np.int32, copy=False)


def _v_dp4a_matmul(arena, c, a, b, m, n, k):
    return dp4a_mac(
        np.asarray(c, np.int32).reshape(m, n),
        np.asarray(a).reshape(m, k),
        np.asarray(b).reshape(k // 4, 4 * n),
    ).ravel()


def _v_dp4a_store(arena, buf, base, stride, rows, cols, tile):
    idx = _tile_idx(arena, base, stride, rows, cols)
    buf.data[idx] = np.asarray(tile, dtype=buf.data.dtype)
    return np.int32(0)


def _v_dp4a2mem(arena, x):
    return x


def _v_wmma_fill(arena, m, n, value):
    return np.full(m * n, value, dtype=np.float32)


def _v_wmma_load(arena, buf, base, stride, rows, cols):
    return _v_tile_load(arena, buf, base, stride, rows, cols)


def _v_wmma_mma(arena, c, a, b, m, n, k):
    wmma_check_shape(m, n, k)
    return mma_sync(
        np.asarray(c, np.float32).reshape(m, n),
        np.asarray(a, np.float32).reshape(m, k),
        np.asarray(b, np.float32).reshape(k, n),
    ).ravel()


def _v_wmma_store(arena, buf, base, stride, m, n, tile):
    return _v_tile_store(arena, buf, base, stride, m, n, tile)


def _v_kway_interleave(arena, k, rows, cols, tile):
    matrix = np.asarray(tile, dtype=np.float32).reshape(rows, cols)
    if arena is None:
        return kway_interleave(matrix, k).ravel()
    return arena.memo(
        ("kway", matrix.dtype.str, matrix.tobytes(), k, rows, cols),
        lambda: kway_interleave(matrix, k).ravel(),
    )


def _v_convolution_shuffle(arena, buf, base, rows, cols, taps, stride):
    kernel = buf.data[base : base + taps]
    if arena is None:
        return toeplitz_from_kernel(kernel, rows, cols, stride).ravel()
    # dtype is part of the key: byte-identical coefficients of a
    # different element type must not collide (arenas may be shared)
    return arena.memo(
        ("toeplitz", kernel.dtype.str, kernel.tobytes(), rows, cols, stride),
        lambda: toeplitz_from_kernel(kernel, rows, cols, stride).ravel(),
    )


def _v_multiphase_shuffle(arena, buf, base, rows, cols, taps, factor):
    kernel = buf.data[base : base + taps]
    if arena is None:
        return multiphase_matrix(kernel, rows, cols, factor).ravel()
    return arena.memo(
        ("multiphase", kernel.dtype.str, kernel.tobytes(), rows, cols, factor),
        lambda: multiphase_matrix(kernel, rows, cols, factor).ravel(),
    )


def _v_wmma2mem(arena, x):
    return x


def _v_tile_expand(arena, tile, valid, cols):
    return tile_expand(tile, valid, cols).ravel()


def _v_tile_compact(arena, tile, cols, valid):
    return tile_compact(tile, cols, valid).ravel()


# -- batch-axis helpers and intrinsic variants ---------------------------------
#
# A batched kernel (see compile_batched_stmt) executes a whole shape
# bucket of B requests in one call.  Buffers marked *stacked* hold
# ``[B, size]`` data and every access gains a leading batch axis; the
# rest of the statement — weights, shuffle-operand construction, tile
# index grids, loop bounds — is emitted exactly as the scalar emitter
# would, so those values are shared across the batch *by construction*.
# Each helper below is the batched twin of a scalar helper above and is
# bit-identical per batch row (same cores, same dtypes, same rounding);
# the differential parity suite in tests/test_batched.py asserts this
# for every app.
#
# Values at run time are either *shared* (scalar, or ``[lanes]``) or
# *batched* (``[B]`` for a batched scalar, ``[B, lanes]`` for a batched
# vector).  A ``[B]`` batched scalar and a ``[lanes]`` vector are both
# 1-D and cannot be told apart at run time, so the emitter decides
# statically (``_expr_batched``) which twin to call.


def _vec_b(x):
    """Batched ``as_vector``: a ``[B]`` batched scalar as a ``[B, 1]``
    column."""
    return np.asarray(x)[:, None]


def _bcast_b(value, count, np_dtype):
    """Batched ``broadcast_value``: per-row scalar fill / vector tile."""
    value = np.asarray(value)
    if value.ndim == 1:
        col = value.astype(np_dtype, copy=False)[:, None]
        return np.broadcast_to(col, (value.shape[0], count))
    return np.tile(value, (1, count))


def _vred_b(value, result_lanes):
    """Batched ``reduce_groups``: row-wise grouped sums.

    The input must be made C-contiguous first: a stacked gather
    (``data[:, idx]``) comes back in transposed layout, and numpy's
    strided reduce loop sums in a different order than the contiguous
    pairwise loop the scalar kernel's ``reduce_groups`` uses — a
    last-ULP divergence the batch-parity suite catches.
    """
    groups = np.ascontiguousarray(value)
    groups = groups.reshape(groups.shape[0], result_lanes, -1)
    return groups.sum(axis=2, dtype=groups.dtype)


def _cat_b(parts):
    """Batched concatenate: shared parts broadcast up to the batch."""
    arrays = [np.asarray(p) for p in parts]
    batch = max(a.shape[0] for a in arrays if a.ndim == 2)
    arrays = [
        a if a.ndim == 2 else np.broadcast_to(a, (batch,) + a.shape)
        for a in arrays
    ]
    return np.concatenate(arrays, axis=1)


def _take_b(arena, name, dtype, extents, memory_type, batch):
    """Batched Allocate entry: a zeroed ``[batch, size]`` scope buffer."""
    if arena is None:
        return StackedBuffer(
            name, dtype, extents, memory_type=memory_type, batch=batch
        )
    return arena.take_batched(name, dtype, extents, memory_type, batch)


def _tiles(value, rows, cols, np_dtype=None):
    """A flat tile value — batched ``[B, rows*cols]`` or shared
    ``[rows*cols]`` — reshaped to ``[..., rows, cols]``.

    Forced C-contiguous so the accelerator cores (``np.matmul`` inside
    the simulators) see the same layout the scalar kernel feeds them —
    float summation order must not depend on the gather's stride trick
    (see :func:`_vred_b`).
    """
    v = np.asarray(value) if np_dtype is None else np.asarray(value, np_dtype)
    v = np.ascontiguousarray(v)
    if v.ndim > 1:
        return v.reshape(v.shape[0], rows, cols)
    return v.reshape(rows, cols)


def _bv_tile_load(arena, buf, base, stride, rows, cols):
    idx = _tile_idx(arena, base, stride, rows, cols)
    return buf.data[:, idx].astype(np.float32, copy=False)


def _bv_tile_matmul(arena, c, a, b, m, n, k):
    out = tdpbf16ps(
        _tiles(c, m, n, np.float32),
        _tiles(a, m, k, np.float32),
        _tiles(b, k // 2, 2 * n, np.float32),
    )
    return out.reshape(out.shape[0], -1)


def _bv_tile_store(arena, buf, base, stride, rows, cols, tile):
    idx = _tile_idx(arena, base, stride, rows, cols)
    values = np.asarray(tile, dtype=buf.data.dtype)
    if buf.dtype.code is TypeCode.BFLOAT:
        values = round_to_bfloat16(values)
    buf.data[:, idx] = values
    return np.float32(0.0)


def _bv_dp4a_load(arena, buf, base, stride, rows, cols):
    idx = _tile_idx(arena, base, stride, rows, cols)
    return buf.data[:, idx].astype(np.int32, copy=False)


def _bv_dp4a_matmul(arena, c, a, b, m, n, k):
    out = dp4a_mac(
        _tiles(c, m, n, np.int32),
        _tiles(a, m, k),
        _tiles(b, k // 4, 4 * n),
    )
    return out.reshape(out.shape[0], -1)


def _bv_dp4a_store(arena, buf, base, stride, rows, cols, tile):
    idx = _tile_idx(arena, base, stride, rows, cols)
    buf.data[:, idx] = np.asarray(tile, dtype=buf.data.dtype)
    return np.int32(0)


def _bv_wmma_fill(arena, m, n, value):
    col = np.asarray(value, dtype=np.float32).reshape(-1, 1)
    return np.full((col.shape[0], m * n), col, dtype=np.float32)


def _bv_wmma_load(arena, buf, base, stride, rows, cols):
    return _bv_tile_load(arena, buf, base, stride, rows, cols)


def _bv_wmma_mma(arena, c, a, b, m, n, k):
    wmma_check_shape(m, n, k)
    out = mma_sync(
        _tiles(c, m, n, np.float32),
        _tiles(a, m, k, np.float32),
        _tiles(b, k, n, np.float32),
    )
    return out.reshape(out.shape[0], -1)


def _bv_wmma_store(arena, buf, base, stride, m, n, tile):
    return _bv_tile_store(arena, buf, base, stride, m, n, tile)


def _bv_tile_expand(arena, tile, valid, cols):
    t = np.asarray(tile, np.float32)
    batch, rows = t.shape[0], t.shape[1] // valid
    out = np.zeros((batch, rows, cols), dtype=np.float32)
    out[:, :, :valid] = t.reshape(batch, rows, valid)
    return out.reshape(batch, rows * cols)


def _bv_tile_compact(arena, tile, cols, valid):
    t = np.asarray(tile, np.float32)
    batch, rows = t.shape[0], t.shape[1] // cols
    return np.ascontiguousarray(
        t.reshape(batch, rows, cols)[:, :, :valid]
    ).reshape(batch, rows * valid)


#: batched twins, selected at emit time when the relevant operand or
#: buffer is batched (see _BatchedEmitter._emit_Call)
_BATCHED_LOADS: Dict[str, Callable] = {
    "tile_load": _bv_tile_load,
    "dp4a_load": _bv_dp4a_load,
    "wmma.load.a.sync": _bv_wmma_load,
    "wmma.load.b.sync": _bv_wmma_load,
}
_BATCHED_STORES: Dict[str, Callable] = {
    "tile_store": _bv_tile_store,
    "dp4a_store": _bv_dp4a_store,
    "wmma.store.d.sync": _bv_wmma_store,
}
_BATCHED_MATMULS: Dict[str, Callable] = {
    "tile_matmul": _bv_tile_matmul,
    "dp4a_matmul": _bv_dp4a_matmul,
    "wmma.mma.sync": _bv_wmma_mma,
}
_BATCHED_ELEMENTWISE: Dict[str, Callable] = {
    "TileExpand": _bv_tile_expand,
    "TileCompact": _bv_tile_compact,
}
#: weight-derived shuffle operands: shared across the batch by
#: construction, so a batched source forces the looped fallback
_SHUFFLE_CONSTRUCTORS = {
    "KWayInterleave",
    "ConvolutionShuffle",
    "MultiphaseShuffle",
}


#: intrinsics with a value-level compiled implementation
VALUE_INTRINSICS: Dict[str, Callable] = {
    "tile_zero": _v_tile_zero,
    "tile_load": _v_tile_load,
    "tile_matmul": _v_tile_matmul,
    "tile_store": _v_tile_store,
    "wmma.fill.sync": _v_wmma_fill,
    "wmma.load.a.sync": _v_wmma_load,
    "wmma.load.b.sync": _v_wmma_load,
    "wmma.mma.sync": _v_wmma_mma,
    "wmma.store.d.sync": _v_wmma_store,
    "dp4a_zero": _v_dp4a_zero,
    "dp4a_load": _v_dp4a_load,
    "dp4a_matmul": _v_dp4a_matmul,
    "dp4a_store": _v_dp4a_store,
    "DP4A2Mem": _v_dp4a2mem,
    "KWayInterleave": _v_kway_interleave,
    "ConvolutionShuffle": _v_convolution_shuffle,
    "MultiphaseShuffle": _v_multiphase_shuffle,
    "WMMA2Mem": _v_wmma2mem,
    "TileExpand": _v_tile_expand,
    "TileCompact": _v_tile_compact,
}

#: unary math intrinsics emitted as direct NumPy calls
MATH_INTRINSICS = {
    "exp": "np.exp",
    "log": "np.log",
    "sqrt": "np.sqrt",
    "abs": "np.abs",
    "floor": "np.floor",
    "sin": "np.sin",
    "cos": "np.cos",
}

#: intrinsics known to be pure (loads of frozen data count as pure);
#: everything else is assumed to mutate a buffer, which disables the
#: zero-copy slice-view optimization inside the same statement.
PURE_INTRINSICS = set(MATH_INTRINSICS) | {
    "tile_zero",
    "tile_load",
    "tile_matmul",
    "wmma.fill.sync",
    "wmma.load.a.sync",
    "wmma.load.b.sync",
    "wmma.mma.sync",
    "dp4a_zero",
    "dp4a_load",
    "dp4a_matmul",
    "DP4A2Mem",
    "KWayInterleave",
    "ConvolutionShuffle",
    "MultiphaseShuffle",
    "WMMA2Mem",
    "TileExpand",
    "TileCompact",
}


def _expr_calls(e: E.Expr):
    """Yield every Call node in an expression tree."""
    stack = [e]
    while stack:
        node = stack.pop()
        if isinstance(node, E.Call):
            yield node
        for attr in EXPR_CHILDREN.get(type(node), ()):
            child = getattr(node, attr)
            if isinstance(child, tuple):
                stack.extend(c for c in child if isinstance(c, E.Expr))
            elif isinstance(child, E.Expr):
                stack.append(child)


def _has_impure_call(e: E.Expr) -> bool:
    return any(c.name not in PURE_INTRINSICS for c in _expr_calls(e))


# -- the emitter ---------------------------------------------------------------


class _Emitter:
    """Walks a lowered statement and produces Python kernel source."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 1
        self.counter = 0
        #: IR loop/let variable name -> python local
        self.scope: Dict[str, str] = {}
        #: env-sourced variable name -> python local (bound in preamble)
        self.env_locals: Dict[str, str] = {}
        #: buffer name -> python local for the flat data array
        self.data_locals: Dict[str, str] = {}
        #: buffer name -> python local for the Buffer object
        self.obj_locals: Dict[str, str] = {}
        #: external buffer name -> python local for its store transform
        self.wrap_locals: Dict[str, str] = {}
        #: names introduced by an enclosing Allocate (not preamble-bound)
        self.allocated: Set[str] = set()
        #: buffer names that must be bound from ``buffers`` in the preamble
        self.ext_data: List[str] = []
        self.ext_obj: List[str] = []
        #: injected globals (constants, helper functions)
        self.globals: Dict[str, object] = {}
        self.needs_interp = False
        #: inside a statement that may mutate buffers mid-expression
        self.copy_views = False
        #: element dtype of enclosing Allocates, for bf16 store rounding
        self._alloc_dtypes: Dict[str, object] = {}

    # -- small utilities ----------------------------------------------------

    def fresh(self, prefix: str = "t") -> str:
        self.counter += 1
        return f"_{prefix}{self.counter}"

    def const(self, value) -> str:
        name = f"_C{len(self.globals)}"
        self.globals[name] = value
        return name

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def block(self):
        """Context manager for an indented suite; emits ``pass`` if empty."""
        emitter = self

        class _Block:
            def __enter__(self):
                self.mark = len(emitter.lines)
                emitter.indent += 1

            def __exit__(self, *exc):
                if len(emitter.lines) == self.mark:
                    emitter.line("pass")
                emitter.indent -= 1

        return _Block()

    # -- buffer locals ------------------------------------------------------

    def buf_data(self, name: str) -> str:
        local = self.data_locals.get(name)
        if local is None:
            local = self.fresh("d")
            self.data_locals[name] = local
            if name not in self.allocated:
                self.ext_data.append(name)
        return local

    def buf_obj(self, name: str) -> str:
        local = self.obj_locals.get(name)
        if local is None:
            local = self.fresh("b")
            self.obj_locals[name] = local
            if name not in self.allocated:
                self.ext_obj.append(name)
        return local

    def store_wrap(self, name: str) -> str:
        """The store-value transform local for an *external* buffer."""
        local = self.wrap_locals.get(name)
        if local is None:
            self.buf_obj(name)
            local = self.fresh("w")
            self.wrap_locals[name] = local
        return local

    # -- expressions --------------------------------------------------------

    def emit(self, e: E.Expr) -> str:
        method = getattr(self, f"_emit_{type(e).__name__}", None)
        if method is None:
            raise CodegenError(f"cannot compile {type(e).__name__}")
        return method(e)

    def emit_vector(self, e: E.Expr) -> str:
        """Emit ``e`` guaranteed to evaluate to a 1-D array."""
        if e.type.lanes > 1:
            return self.emit(e)
        return f"_vec({self.emit(e)}, 1)"

    def _emit_IntImm(self, e: E.IntImm) -> str:
        return repr(e.value)

    def _emit_FloatImm(self, e: E.FloatImm) -> str:
        if math.isfinite(e.value):
            return repr(e.value)
        return self.const(e.value)

    def _emit_Variable(self, e: E.Variable) -> str:
        local = self.scope.get(e.name)
        if local is not None:
            return local
        local = self.env_locals.get(e.name)
        if local is None:
            local = self.fresh("v")
            self.env_locals[e.name] = local
        return local

    def _emit_Cast(self, e: E.Cast) -> str:
        value = self.emit(e.value)
        target = e.dtype
        if target.code is TypeCode.BFLOAT:
            return f"_bf16({value})"
        np_dtype = self.const(target.to_numpy())
        if target.is_float():
            return f"_cast_f({value}, {np_dtype})"
        return f"_cast_i({value}, {np_dtype})"

    def _binary(self, e, op: str) -> str:
        return f"({self.emit(e.a)} {op} {self.emit(e.b)})"

    def _emit_Add(self, e):
        return self._binary(e, "+")

    def _emit_Sub(self, e):
        return self._binary(e, "-")

    def _emit_Mul(self, e):
        return self._binary(e, "*")

    def _emit_Div(self, e):
        if e.type.is_float():
            return self._binary(e, "/")
        return self._binary(e, "//")

    def _emit_Mod(self, e):
        if e.type.is_float():
            return f"np.fmod({self.emit(e.a)}, {self.emit(e.b)})"
        return self._binary(e, "%")

    def _emit_Min(self, e):
        return f"np.minimum({self.emit(e.a)}, {self.emit(e.b)})"

    def _emit_Max(self, e):
        return f"np.maximum({self.emit(e.a)}, {self.emit(e.b)})"

    def _emit_EQ(self, e):
        return self._binary(e, "==")

    def _emit_NE(self, e):
        return self._binary(e, "!=")

    def _emit_LT(self, e):
        return self._binary(e, "<")

    def _emit_LE(self, e):
        return self._binary(e, "<=")

    def _emit_GT(self, e):
        return self._binary(e, ">")

    def _emit_GE(self, e):
        return self._binary(e, ">=")

    def _emit_And(self, e):
        return f"np.logical_and({self.emit(e.a)}, {self.emit(e.b)})"

    def _emit_Or(self, e):
        return f"np.logical_or({self.emit(e.a)}, {self.emit(e.b)})"

    def _emit_Not(self, e):
        return f"np.logical_not({self.emit(e.value)})"

    def _emit_Select(self, e: E.Select) -> str:
        return (
            f"np.where({self.emit(e.condition)}, "
            f"{self.emit(e.true_value)}, {self.emit(e.false_value)})"
        )

    def _emit_Ramp(self, e: E.Ramp) -> str:
        if e.base.type.lanes == 1 and e.stride.type.lanes == 1:
            base = self.emit(e.base)
            if isinstance(e.stride, E.IntImm):
                steps = self.const(np.arange(e.count) * e.stride.value)
                return f"({base} + {steps})"
            steps = self.const(np.arange(e.count))
            return f"({base} + {steps} * {self.emit(e.stride)})"
        return f"_ramp({self.emit(e.base)}, {self.emit(e.stride)}, {e.count})"

    def _emit_Broadcast(self, e: E.Broadcast) -> str:
        np_dtype = self.const(e.type.element_of().to_numpy())
        return f"_bcast({self.emit(e.value)}, {e.count}, {np_dtype})"

    def _emit_VectorReduce(self, e: E.VectorReduce) -> str:
        return f"_vred({self.emit_vector(e.value)}, {e.result_lanes})"

    def _emit_Shuffle(self, e: E.Shuffle) -> str:
        indices = self.const(np.asarray(e.indices, dtype=np.int64))
        parts = [self.emit_vector(v) for v in e.vectors]
        if len(parts) == 1:
            return f"{parts[0]}[{indices}]"
        return f"np.concatenate(({', '.join(parts)},))[{indices}]"

    def _emit_Let(self, e: E.Let) -> str:
        value = self.emit(e.value)
        local = self.fresh("v")
        self.line(f"{local} = {value}")
        saved = self.scope.get(e.name)
        self.scope[e.name] = local
        body = self.emit(e.body)
        if saved is None:
            del self.scope[e.name]
        else:
            self.scope[e.name] = saved
        return body

    def _emit_Load(self, e: E.Load) -> str:
        data = self.buf_data(e.name)
        idx = e.index
        if idx.type.lanes == 1:
            return f"{data}[{self.emit(idx)}]"
        sliced = self._try_slice(idx)
        if sliced is not None:
            code = f"{data}[{sliced}]"
            if self.copy_views:
                code = f"np.array({code})"
            return code
        return f"{data}[_idx({self.emit(idx)})]"

    def _try_slice(self, idx: E.Expr) -> Optional[str]:
        """A basic-slice spelling for a scalar-base, const-stride ramp.

        Returns the text between the brackets, or None.  The base is
        hoisted to a temp so it is evaluated once.
        """
        if not isinstance(idx, E.Ramp):
            return None
        if idx.base.type.lanes != 1:
            return None
        if not isinstance(idx.stride, E.IntImm) or idx.stride.value <= 0:
            return None
        stride = idx.stride.value
        base = self.emit(idx.base)
        temp = self.fresh("i")
        self.line(f"{temp} = {base}")
        if stride == 1:
            return f"{temp}:{temp} + {idx.count}"
        stop = idx.count * stride - stride + 1
        return f"{temp}:{temp} + {stop}:{stride}"

    def _emit_Call(self, e: E.Call) -> str:
        math_fn = MATH_INTRINSICS.get(e.name)
        if math_fn is not None:
            return f"{math_fn}({self.emit(e.args[0])})"
        fn = VALUE_INTRINSICS.get(e.name)
        if fn is not None:
            args = ["_arena"]
            for a in e.args:
                if isinstance(a, E.StringImm):
                    args.append(self.buf_obj(a.value))
                else:
                    args.append(self.emit(a))
            return f"{self.const(fn)}({', '.join(args)})"
        # unknown intrinsic: hand the Call node to the interpreter
        self.needs_interp = True
        call = self.const(e)
        return f"_interp._eval_Call({call}, {self._env_dict(e)})"

    def _env_dict(self, e: E.Expr) -> str:
        entries = []
        for name in sorted(free_variables(e)):
            local = self.scope.get(name)
            if local is None:
                local = self._emit_Variable(E.Variable(name))
            entries.append(f"{name!r}: {local}")
        return "{" + ", ".join(entries) + "}"

    def _emit_StringImm(self, e: E.StringImm) -> str:
        raise CodegenError("string immediate outside an intrinsic call")

    # -- statements ---------------------------------------------------------

    def emit_stmt(self, stmt: S.Stmt) -> None:
        method = getattr(self, f"_exec_{type(stmt).__name__}", None)
        if method is None:
            raise CodegenError(f"cannot compile {type(stmt).__name__}")
        method(stmt)

    def _exec_Block(self, stmt: S.Block) -> None:
        for part in stmt.stmts:
            self.emit_stmt(part)

    def _exec_ProducerConsumer(self, stmt: S.ProducerConsumer) -> None:
        self.emit_stmt(stmt.body)

    def _exec_Evaluate(self, stmt: S.Evaluate) -> None:
        if not any(True for _ in _expr_calls(stmt.value)):
            return  # pure expression, no effect
        self.copy_views = _has_impure_call(stmt.value)
        code = self.emit(stmt.value)
        self.copy_views = False
        self.line(code)

    def _exec_Store(self, stmt: S.Store) -> None:
        self.copy_views = _has_impure_call(stmt.value) or _has_impure_call(
            stmt.index
        )
        data = self.buf_data(stmt.name)
        value = self.emit(stmt.value)
        if isinstance(stmt.value, E.Load) and stmt.value.name == stmt.name:
            # bare self-copy: avoid overlapping-view assignment hazards
            value = f"np.array({value})"
        if stmt.name in self.allocated:
            dtype = self._alloc_dtypes.get(stmt.name)
            if dtype is not None and dtype.code is TypeCode.BFLOAT:
                value = f"_bf16({value})"
        else:
            value = f"{self.store_wrap(stmt.name)}({value})"
        idx = stmt.index
        if idx.type.lanes == 1:
            self.line(f"{data}[{self.emit(idx)}] = {value}")
        else:
            sliced = self._try_slice(idx)
            if sliced is not None:
                self.line(f"{data}[{sliced}] = {value}")
            else:
                self.line(f"{data}[_idx({self.emit(idx)})] = {value}")
        self.copy_views = False

    def _exec_For(self, stmt: S.For) -> None:
        var = self.fresh("x")
        lo = self.fresh("i")
        self.line(f"{lo} = {self.emit(stmt.min_expr)}")
        saved = self.scope.get(stmt.name)
        self.scope[stmt.name] = var
        if stmt.kind is ForKind.GPU_LANE:
            # warp-collective body: executes once (see the interpreter)
            self.line(f"{var} = {lo}")
            self.emit_stmt(stmt.body)
        else:
            extent = self.emit(stmt.extent)
            self.line(f"for {var} in range({lo}, {lo} + {extent}):")
            with self.block():
                self.emit_stmt(stmt.body)
        if saved is None:
            del self.scope[stmt.name]
        else:
            self.scope[stmt.name] = saved

    def _exec_LetStmt(self, stmt: S.LetStmt) -> None:
        local = self.fresh("v")
        self.line(f"{local} = {self.emit(stmt.value)}")
        saved = self.scope.get(stmt.name)
        self.scope[stmt.name] = local
        self.emit_stmt(stmt.body)
        if saved is None:
            del self.scope[stmt.name]
        else:
            self.scope[stmt.name] = saved

    def _exec_IfThenElse(self, stmt: S.IfThenElse) -> None:
        self.line(f"if _cond({self.emit(stmt.condition)}):")
        with self.block():
            self.emit_stmt(stmt.then_case)
        if stmt.else_case is not None:
            self.line("else:")
            with self.block():
                self.emit_stmt(stmt.else_case)

    def _take_call(self, name, dtype, extents, memtype) -> str:
        """The Allocate-entry expression (hook for the batched emitter)."""
        return f"_take(_arena, {name!r}, {dtype}, ({extents},), {memtype})"

    def _exec_Allocate(self, stmt: S.Allocate) -> None:
        name = stmt.name
        was_allocated = name in self.allocated
        self.allocated.add(name)
        saved_dtype = self._alloc_dtypes.get(name)
        self._alloc_dtypes[name] = stmt.dtype.element_of()
        obj = self.buf_obj(name)
        data = self.buf_data(name)
        saved = self.fresh("s")
        extents = ", ".join(self.emit(e) for e in stmt.extents)
        dtype = self.const(stmt.dtype.element_of())
        memtype = self.const(stmt.memory_type)
        self.line(f"{saved} = buffers.get({name!r})")
        self.line(f"{obj} = {self._take_call(name, dtype, extents, memtype)}")
        self.line(f"buffers[{name!r}] = {obj}")
        self.line(f"{data} = {obj}.data")
        self.emit_stmt(stmt.body)
        self.line(f"_give(_arena, {obj})")
        self.line(f"if {saved} is None:")
        with self.block():
            self.line(f"buffers.pop({name!r}, None)")
        self.line("else:")
        with self.block():
            self.line(f"buffers[{name!r}] = {saved}")
            self.line(f"{obj} = {saved}")
            self.line(f"{data} = {saved}.data")
        if not was_allocated:
            self.allocated.discard(name)
        if saved_dtype is None:
            self._alloc_dtypes.pop(name, None)
        else:
            self._alloc_dtypes[name] = saved_dtype

    # -- assembly ------------------------------------------------------------

    def source(self) -> str:
        preamble = []
        for name in self.ext_data:
            preamble.append(
                f"    {self.data_locals[name]} = buffers[{name!r}].data"
            )
        for name in self.ext_obj:
            preamble.append(f"    {self.obj_locals[name]} = buffers[{name!r}]")
        for name, local in self.wrap_locals.items():
            preamble.append(
                f"    {local} = _store_wrap({self.obj_locals[name]})"
            )
        for name, local in sorted(self.env_locals.items()):
            preamble.append(f"    {local} = env[{name!r}]")
        body = self.lines or ["    pass"]
        return "\n".join(
            ["def _kernel(buffers, env, _interp, _arena):"] + preamble + body
        )


#: helper functions available inside every kernel
_HELPER_GLOBALS = {
    "np": np,
    "_bf16": _bf16,
    "_bcast": broadcast_value,
    "_vec": as_vector,
    "_vred": reduce_groups,
    "_ramp": ramp_value,
    "_cond": _cond,
    "_idx": _idx,
    "_cast_f": _cast_f,
    "_cast_i": _cast_i,
    "_Buffer": Buffer,
    "_store_wrap": _store_wrap,
    "_take": _take,
    "_give": _give,
    "_vec_b": _vec_b,
    "_bcast_b": _bcast_b,
    "_vred_b": _vred_b,
    "_cat_b": _cat_b,
    "_take_b": _take_b,
}


class CompiledKernel:
    """A compiled (or interpreter-fallback) kernel, ready to run."""

    def __init__(
        self,
        fn: Callable,
        source: Optional[str],
        key: str,
        needs_interp: bool,
        is_fallback: bool = False,
        globals_map: Optional[Dict[str, object]] = None,
    ) -> None:
        self.fn = fn
        self.source = source
        self.key = key
        self.needs_interp = needs_interp
        self.is_fallback = is_fallback
        #: emitter-injected constants (offset tables, dtypes, intrinsic
        #: cores) — retained so the kernel can be serialized to disk
        self.globals_map = globals_map

    def __call__(
        self, buffers: Dict[str, Buffer], env: dict, arena=None
    ) -> None:
        interp = None
        if self.needs_interp:
            from .interpreter import Interpreter

            interp = Interpreter({}, None)
            # share the live dict so Allocate/intrinsics see one world
            interp.buffers = buffers
        self.fn(buffers, env, interp, arena)


def compile_stmt(stmt: S.Stmt, key: str = "") -> CompiledKernel:
    """Compile a lowered statement into a NumPy kernel.

    Falls back to a kernel that runs the interpreter when the statement
    contains a construct the emitter does not support, so the compiled
    backend accepts every statement the interpreter does.
    """
    emitter = _Emitter()
    try:
        emitter.emit_stmt(stmt)
        src = emitter.source()
        code = compile(src, f"<kernel {key[:12] or 'anon'}>", "exec")
        namespace = dict(_HELPER_GLOBALS)
        namespace.update(emitter.globals)
        exec(code, namespace)
        return CompiledKernel(
            namespace["_kernel"],
            src,
            key,
            emitter.needs_interp,
            globals_map=emitter.globals,
        )
    except CodegenError:
        def fallback(buffers, env, interp, arena):
            interp.run(stmt, env)

        return CompiledKernel(
            fallback, None, key, needs_interp=True, is_fallback=True
        )


# -- batch-axis compilation ----------------------------------------------------


def _expr_batched(e: E.Expr, stacked, var_batched: Dict[str, bool]) -> bool:
    """Does ``e`` evaluate to a per-request (batched) value?

    An expression is batched iff it transitively reads a stacked buffer
    or a let-bound variable that does.  Loop variables and env-sourced
    scalars are shared; intrinsic *stores* return a shared scalar zero
    whatever their operands.
    """
    if isinstance(e, E.Variable):
        return var_batched.get(e.name, False)
    if isinstance(e, E.Load):
        if e.name in stacked:
            return True
        return _expr_batched(e.index, stacked, var_batched)
    if isinstance(e, E.Let):
        value_b = _expr_batched(e.value, stacked, var_batched)
        saved = var_batched.get(e.name)
        var_batched[e.name] = value_b
        try:
            return _expr_batched(e.body, stacked, var_batched)
        finally:
            if saved is None:
                var_batched.pop(e.name, None)
            else:
                var_batched[e.name] = saved
    if isinstance(e, E.Call):
        if e.name in _BATCHED_STORES:
            return False
        if any(
            isinstance(a, E.StringImm) and a.value in stacked for a in e.args
        ):
            return True
        return any(
            _expr_batched(a, stacked, var_batched)
            for a in e.args
            if not isinstance(a, E.StringImm)
        )
    for attr in EXPR_CHILDREN.get(type(e), ()):
        child = getattr(e, attr)
        if isinstance(child, tuple):
            if any(
                isinstance(c, E.Expr)
                and _expr_batched(c, stacked, var_batched)
                for c in child
            ):
                return True
        elif isinstance(child, E.Expr) and _expr_batched(
            child, stacked, var_batched
        ):
            return True
    return False


def _batched_allocations(stmt: S.Stmt, stacked_external) -> frozenset:
    """Widen Allocate scopes with the batch axis where needed.

    Fixpoint over the statement: an allocated buffer becomes *stacked*
    as soon as any value stored into it (plain Store or a store
    intrinsic's tile operand) is batched.  Everything else — weight
    staging, shuffle-operand scratch — stays shared across the batch.
    Returns the full stacked set (externals plus promoted allocations).
    """
    stacked = set(stacked_external)
    allocated: Set[str] = set()
    changed = True

    def mark(name: str, value: E.Expr, vb: Dict[str, bool]) -> None:
        nonlocal changed
        if (
            name in allocated
            and name not in stacked
            and _expr_batched(value, stacked, vb)
        ):
            stacked.add(name)
            changed = True

    def scan_store_calls(e: E.Expr, vb: Dict[str, bool]) -> None:
        for call in _expr_calls(e):
            if call.name in _BATCHED_STORES and isinstance(
                call.args[0], E.StringImm
            ):
                mark(call.args[0].value, call.args[-1], vb)

    def walk(s: S.Stmt, vb: Dict[str, bool]) -> None:
        if isinstance(s, S.Block):
            for part in s.stmts:
                walk(part, vb)
        elif isinstance(s, S.ProducerConsumer):
            walk(s.body, vb)
        elif isinstance(s, S.Allocate):
            allocated.add(s.name)
            walk(s.body, vb)
        elif isinstance(s, S.For):
            saved = vb.get(s.name)
            vb[s.name] = False
            walk(s.body, vb)
            if saved is None:
                vb.pop(s.name, None)
            else:
                vb[s.name] = saved
        elif isinstance(s, S.LetStmt):
            scan_store_calls(s.value, vb)
            value_b = _expr_batched(s.value, stacked, vb)
            saved = vb.get(s.name)
            vb[s.name] = value_b
            walk(s.body, vb)
            if saved is None:
                vb.pop(s.name, None)
            else:
                vb[s.name] = saved
        elif isinstance(s, S.IfThenElse):
            walk(s.then_case, vb)
            if s.else_case is not None:
                walk(s.else_case, vb)
        elif isinstance(s, S.Store):
            mark(s.name, s.value, vb)
            scan_store_calls(s.value, vb)
            scan_store_calls(s.index, vb)
        elif isinstance(s, S.Evaluate):
            scan_store_calls(s.value, vb)

    while changed:
        changed = False
        walk(stmt, {})
    return frozenset(stacked)


class _BatchedEmitter(_Emitter):
    """Emits a batch-axis kernel for a fixed set of stacked buffers.

    Stacked buffers hold ``[B, size]`` data and all their accesses gain
    a leading batch axis (``data[:, index]``); the kernels are
    *B-agnostic* — one compiled kernel serves every batch size of the
    bucket.  Shared state (weights, shuffle operands, tile grids, loop
    nests) is emitted exactly as the scalar emitter would.  Constructs
    whose control flow or addressing would depend on per-request data
    raise :class:`CodegenError`; there is no interpreter fallback —
    the caller falls back to the looped per-request path instead.
    """

    def __init__(self, stacked) -> None:
        super().__init__()
        self.stacked = frozenset(stacked)
        self.var_batched: Dict[str, bool] = {}
        # the batch size, bound in the preamble like any env variable;
        # only _take_b needs it (value helpers read array shapes)
        self.env_locals["batch.size"] = "_B"

    def batched(self, e: E.Expr) -> bool:
        return _expr_batched(e, self.stacked, self.var_batched)

    # -- expressions --------------------------------------------------------

    def emit_vector(self, e: E.Expr) -> str:
        if e.type.lanes > 1:
            return self.emit(e)
        if self.batched(e):
            return f"_vec_b({self.emit(e)})"
        return f"_vec({self.emit(e)}, 1)"

    def _emit_Ramp(self, e: E.Ramp) -> str:
        if self.batched(e.base) or self.batched(e.stride):
            raise CodegenError("batched ramp addressing")
        return super()._emit_Ramp(e)

    def _emit_Broadcast(self, e: E.Broadcast) -> str:
        if not self.batched(e.value):
            return super()._emit_Broadcast(e)
        np_dtype = self.const(e.type.element_of().to_numpy())
        return f"_bcast_b({self.emit(e.value)}, {e.count}, {np_dtype})"

    def _emit_VectorReduce(self, e: E.VectorReduce) -> str:
        if not self.batched(e.value):
            return super()._emit_VectorReduce(e)
        return f"_vred_b({self.emit_vector(e.value)}, {e.result_lanes})"

    def _emit_Shuffle(self, e: E.Shuffle) -> str:
        if not self.batched(e):
            return super()._emit_Shuffle(e)
        indices = self.const(np.asarray(e.indices, dtype=np.int64))
        parts = [self.emit_vector(v) for v in e.vectors]
        if len(parts) == 1:
            return f"{parts[0]}[..., {indices}]"
        return f"_cat_b(({', '.join(parts)},))[..., {indices}]"

    def _emit_Let(self, e: E.Let) -> str:
        value_b = self.batched(e.value)
        value = self.emit(e.value)
        local = self.fresh("v")
        self.line(f"{local} = {value}")
        saved = self.scope.get(e.name)
        saved_b = self.var_batched.get(e.name)
        self.scope[e.name] = local
        self.var_batched[e.name] = value_b
        try:
            return self.emit(e.body)
        finally:
            if saved is None:
                del self.scope[e.name]
            else:
                self.scope[e.name] = saved
            if saved_b is None:
                self.var_batched.pop(e.name, None)
            else:
                self.var_batched[e.name] = saved_b

    def _emit_Load(self, e: E.Load) -> str:
        if self.batched(e.index):
            raise CodegenError("batched (data-dependent) load index")
        if e.name not in self.stacked:
            return super()._emit_Load(e)
        data = self.buf_data(e.name)
        idx = e.index
        if idx.type.lanes == 1:
            code = f"{data}[:, {self.emit(idx)}]"
        else:
            sliced = self._try_slice(idx)
            if sliced is not None:
                code = f"{data}[:, {sliced}]"
            else:
                return f"{data}[:, _idx({self.emit(idx)})]"
        # both spellings above are views into the stacked array; copy
        # them when the statement may mutate buffers mid-expression
        if self.copy_views:
            code = f"np.array({code})"
        return code

    def _emit_Call(self, e: E.Call) -> str:
        name = e.name
        if name in MATH_INTRINSICS:
            return super()._emit_Call(e)
        if name not in VALUE_INTRINSICS:
            # no interpreter fallback inside batched kernels
            raise CodegenError(f"intrinsic {name!r} has no batched emission")
        arg_b = [
            (not isinstance(a, E.StringImm)) and self.batched(a)
            for a in e.args
        ]
        buf = e.args[0] if e.args else None
        buf_stacked = (
            isinstance(buf, E.StringImm) and buf.value in self.stacked
        )
        fn = VALUE_INTRINSICS[name]
        if name in _BATCHED_LOADS:
            if any(arg_b[1:]):
                raise CodegenError("batched tile addressing")
            if buf_stacked:
                fn = _BATCHED_LOADS[name]
        elif name in _BATCHED_STORES:
            if any(arg_b[1:-1]):
                raise CodegenError("batched tile addressing")
            if buf_stacked:
                fn = _BATCHED_STORES[name]
            elif arg_b[-1]:
                raise CodegenError(f"{name} of batched tile into shared buffer")
        elif name in _BATCHED_MATMULS:
            if any(arg_b[3:]):
                raise CodegenError("batched matmul geometry")
            if any(arg_b[:3]):
                fn = _BATCHED_MATMULS[name]
        elif name == "wmma.fill.sync":
            if arg_b[0] or arg_b[1]:
                raise CodegenError("batched fill geometry")
            if arg_b[2]:
                fn = _bv_wmma_fill
        elif name in _BATCHED_ELEMENTWISE:
            if any(arg_b[1:]):
                raise CodegenError("batched tile geometry")
            if arg_b[0]:
                fn = _BATCHED_ELEMENTWISE[name]
        elif name in _SHUFFLE_CONSTRUCTORS:
            # shared-by-construction: per-request weights cannot feed a
            # shuffle-operand constructor in a batched kernel
            if buf_stacked or any(arg_b):
                raise CodegenError(
                    f"{name} over per-request data cannot be batched"
                )
        elif name in ("tile_zero", "dp4a_zero"):
            if any(arg_b):
                raise CodegenError("batched tile geometry")
        elif name in ("DP4A2Mem", "WMMA2Mem"):
            pass  # identity either way
        elif any(arg_b) or buf_stacked:
            raise CodegenError(f"{name} cannot be batched")
        args = ["_arena"]
        for a in e.args:
            if isinstance(a, E.StringImm):
                args.append(self.buf_obj(a.value))
            else:
                args.append(self.emit(a))
        return f"{self.const(fn)}({', '.join(args)})"

    # -- statements ---------------------------------------------------------

    def _exec_Store(self, stmt: S.Store) -> None:
        if self.batched(stmt.index):
            raise CodegenError("batched store index")
        if stmt.name not in self.stacked:
            if self.batched(stmt.value):
                raise CodegenError(
                    f"batched store into shared buffer {stmt.name!r}"
                )
            return super()._exec_Store(stmt)
        self.copy_views = _has_impure_call(stmt.value) or _has_impure_call(
            stmt.index
        )
        data = self.buf_data(stmt.name)
        value = self.emit(stmt.value)
        if isinstance(stmt.value, E.Load) and stmt.value.name == stmt.name:
            # bare self-copy: avoid overlapping-view assignment hazards
            value = f"np.array({value})"
        if stmt.name in self.allocated:
            dtype = self._alloc_dtypes.get(stmt.name)
            if dtype is not None and dtype.code is TypeCode.BFLOAT:
                value = f"_bf16({value})"
        else:
            value = f"{self.store_wrap(stmt.name)}({value})"
        idx = stmt.index
        if idx.type.lanes == 1:
            self.line(f"{data}[:, {self.emit(idx)}] = {value}")
        else:
            sliced = self._try_slice(idx)
            if sliced is not None:
                self.line(f"{data}[:, {sliced}] = {value}")
            else:
                self.line(f"{data}[:, _idx({self.emit(idx)})] = {value}")
        self.copy_views = False

    def _exec_For(self, stmt: S.For) -> None:
        if self.batched(stmt.min_expr) or self.batched(stmt.extent):
            raise CodegenError("batched loop bounds")
        saved = self.var_batched.get(stmt.name)
        self.var_batched[stmt.name] = False
        try:
            super()._exec_For(stmt)
        finally:
            if saved is None:
                self.var_batched.pop(stmt.name, None)
            else:
                self.var_batched[stmt.name] = saved

    def _exec_LetStmt(self, stmt: S.LetStmt) -> None:
        value_b = self.batched(stmt.value)
        local = self.fresh("v")
        self.line(f"{local} = {self.emit(stmt.value)}")
        saved = self.scope.get(stmt.name)
        saved_b = self.var_batched.get(stmt.name)
        self.scope[stmt.name] = local
        self.var_batched[stmt.name] = value_b
        try:
            self.emit_stmt(stmt.body)
        finally:
            if saved is None:
                del self.scope[stmt.name]
            else:
                self.scope[stmt.name] = saved
            if saved_b is None:
                self.var_batched.pop(stmt.name, None)
            else:
                self.var_batched[stmt.name] = saved_b

    def _exec_IfThenElse(self, stmt: S.IfThenElse) -> None:
        if self.batched(stmt.condition):
            raise CodegenError("batched branch condition")
        super()._exec_IfThenElse(stmt)

    def _exec_Allocate(self, stmt: S.Allocate) -> None:
        if any(self.batched(e) for e in stmt.extents):
            raise CodegenError("batched allocation extents")
        super()._exec_Allocate(stmt)

    def _take_call(self, name, dtype, extents, memtype) -> str:
        if name not in self.stacked:
            return super()._take_call(name, dtype, extents, memtype)
        return (
            f"_take_b(_arena, {name!r}, {dtype}, ({extents},), "
            f"{memtype}, _B)"
        )


def compile_batched_stmt(
    stmt: S.Stmt, stacked, key: str = ""
) -> CompiledKernel:
    """Compile a batch-axis variant of a lowered statement.

    ``stacked`` names the external buffers that carry a leading batch
    dimension — the per-request inputs and the output; internal
    Allocates are widened automatically when any value stored into them
    is per-request (:func:`_batched_allocations`).  The kernel runs on
    ``StackedBuffer``s for the stacked names, plain ``Buffer``s for the
    shared ones, and ``env['batch.size']``; it is B-agnostic.

    Unlike :func:`compile_stmt` there is **no** interpreter fallback:
    a construct the batched emitter cannot express (per-request control
    flow or addressing, per-request weights feeding a shuffle
    constructor, unknown intrinsics) raises :class:`CodegenError`, and
    the caller falls back to the looped per-request path.
    """
    all_stacked = _batched_allocations(stmt, frozenset(stacked))
    emitter = _BatchedEmitter(all_stacked)
    emitter.emit_stmt(stmt)
    src = emitter.source()
    code = compile(src, f"<batched-kernel {key[:12] or 'anon'}>", "exec")
    namespace = dict(_HELPER_GLOBALS)
    namespace.update(emitter.globals)
    exec(code, namespace)
    return CompiledKernel(
        namespace["_kernel"],
        src,
        key,
        needs_interp=False,
        globals_map=emitter.globals,
    )


# -- kernel (de)serialization --------------------------------------------------
#
# A compiled kernel is plain Python source plus a dict of injected
# constants (numpy offset tables, dtype objects, intrinsic cores picked
# by reference).  Both halves are picklable, so a kernel compiled in one
# process can be persisted and re-hydrated in another without running
# codegen again — the warm-start artifact store and the kernel cache's
# disk tier (see :mod:`repro.service.store` and :mod:`.kernel_cache`)
# both build on this pair.  Interpreter-fallback kernels close over the
# statement itself and are cheap to rebuild, so they are not
# serializable (``serialize_kernel`` returns ``None``).

#: bump when the emitted-source contract changes; stale payloads on
#: disk are rejected and recompiled rather than mis-executed.
#: v2: kernels take an arena argument (buffer pooling + operand memos)
#: v3: batch-axis kernels (stacked [B, size] buffers, _bv_*/_take_b
#:     helpers, env['batch.size'])
KERNEL_FORMAT_VERSION = 3


def serialize_kernel(kernel: CompiledKernel) -> Optional[dict]:
    """A picklable payload for ``kernel``, or None if not serializable."""
    if kernel.source is None or kernel.globals_map is None:
        return None
    return {
        "format": KERNEL_FORMAT_VERSION,
        "key": kernel.key,
        "source": kernel.source,
        "globals": kernel.globals_map,
        "needs_interp": kernel.needs_interp,
    }


def deserialize_kernel(payload: dict) -> CompiledKernel:
    """Re-hydrate a kernel from :func:`serialize_kernel`'s payload.

    Raises :class:`CodegenError` on a format-version mismatch, so
    callers treat stale payloads as cache misses.
    """
    if payload.get("format") != KERNEL_FORMAT_VERSION:
        raise CodegenError(
            f"kernel payload format {payload.get('format')!r} !="
            f" {KERNEL_FORMAT_VERSION}"
        )
    key = payload["key"]
    code = compile(payload["source"], f"<kernel {key[:12] or 'anon'}>", "exec")
    namespace = dict(_HELPER_GLOBALS)
    namespace.update(payload["globals"])
    exec(code, namespace)
    return CompiledKernel(
        namespace["_kernel"],
        payload["source"],
        key,
        payload["needs_interp"],
        globals_map=payload["globals"],
    )
