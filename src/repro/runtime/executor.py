"""Realizing compiled pipelines against numpy inputs."""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from ..frontend.func import Func, ImageParam
from ..ir import as_int
from ..lowering.pipeline import Lowered, lower
from .buffer import Buffer
from .counters import Counters
from .interpreter import Interpreter

# importing the target simulators registers their intrinsic handlers
from ..targets import amx as _amx  # noqa: F401
from ..targets import wmma as _wmma  # noqa: F401
from ..hardboiled import intrinsics as _hb_intrinsics  # noqa: F401

InputMap = Dict[Union[str, ImageParam], np.ndarray]


class CompiledPipeline:
    """A lowered pipeline ready to run repeatedly."""

    def __init__(self, lowered: Lowered) -> None:
        self.lowered = lowered
        self.output_name = lowered.output.name
        info = lowered.realizations[self.output_name]
        self.output_extents = tuple(as_int(e) for e in info.extents)
        self.output_dtype = lowered.output.dtype.element_of()

    def run(
        self,
        inputs: Optional[InputMap] = None,
        counters: Optional[Counters] = None,
    ) -> np.ndarray:
        buffers = {}
        env = {}
        for key, array in (inputs or {}).items():
            name = key.name if isinstance(key, ImageParam) else str(key)
            dtype = key.dtype if isinstance(key, ImageParam) else None
            buf = Buffer.from_numpy(name, array, dtype=dtype)
            buffers[name] = buf
            for d, stride in enumerate(buf.strides):
                if d > 0:
                    env[f"{name}.stride.{d}"] = stride
        out = Buffer(
            self.output_name,
            self.output_dtype,
            self.output_extents,
            is_external=True,
        )
        buffers[self.output_name] = out
        interp = Interpreter(buffers, counters)
        interp.run(self.lowered.stmt, env)
        if counters is not None:
            from .interpreter import memory_level

            for buf in buffers.values():
                level = memory_level(buf)
                counters.add_load(
                    f"{level}_unique", buf.load_footprint_bytes()
                )
                counters.add_store(
                    f"{level}_unique", buf.store_footprint_bytes()
                )
        return out.to_numpy()


def compile_pipeline(output: Func, **lower_kwargs) -> CompiledPipeline:
    return CompiledPipeline(lower(output, **lower_kwargs))


def realize(
    output: Func,
    inputs: Optional[InputMap] = None,
    counters: Optional[Counters] = None,
    **lower_kwargs,
) -> np.ndarray:
    """One-shot: lower, run, and return the output as a numpy array.

    The output array follows numpy convention (outermost dimension first);
    the Func's first argument is the last numpy axis.
    """
    return compile_pipeline(output, **lower_kwargs).run(inputs, counters)
