"""Realizing compiled pipelines against numpy inputs.

A :class:`CompiledPipeline` can execute through either backend:

``backend="interpret"``
    The tree-walking interpreter — the *instrumented* path.  It records
    op/byte :class:`~repro.runtime.counters.Counters` for the roofline
    performance model and bounds-checks every access.

``backend="compile"``
    The compiled NumPy backend (:mod:`.codegen`) — the *fast* path.
    The lowered statement is translated once into vectorized NumPy
    source, memoized in the process-wide kernel cache, and re-run
    without per-node dispatch overhead.  It produces identical outputs
    but records nothing, so any run that passes ``counters`` is routed
    through the interpreter regardless of the configured backend.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, FrozenSet, List, Optional, Sequence, Union

import numpy as np

from ..frontend.func import Func, ImageParam
from ..ir import as_int
from ..lowering.pipeline import Lowered, lower
from .buffer import Buffer
from .counters import Counters
from .faultpoints import fire
from .interpreter import Interpreter
from .kernel_cache import (
    DEFAULT_CACHE,
    KernelCache,
    batched_key,
    fingerprint_stmt,
)
from .plan import (
    BatchedExecutionPlan,
    BatchingUnsupported,
    BufferArena,
    ExecutionPlan,
    bind_inputs,
    stride_env,
)

# importing the target simulators registers their intrinsic handlers
from ..targets import amx as _amx  # noqa: F401
from ..targets import dp4a as _dp4a  # noqa: F401
from ..targets import wmma as _wmma  # noqa: F401
from ..hardboiled import intrinsics as _hb_intrinsics  # noqa: F401

InputMap = Dict[Union[str, ImageParam], np.ndarray]

BACKENDS = ("interpret", "compile")


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


class RequestError(RuntimeError):
    """One request of a ``run_many`` batch failed.

    Returned *in place of* that request's output when the batch runs
    with ``on_error="return"``, so a single poisoned request cannot
    take down its whole bucket.  The original exception — with its
    traceback attached — is preserved on :attr:`original`; the failing
    request's position in the batch on :attr:`index`.
    """

    def __init__(self, index: int, original: BaseException) -> None:
        super().__init__(
            f"request {index} failed:"
            f" {type(original).__name__}: {original}"
        )
        self.index = index
        self.original = original


class CompiledPipeline:
    """A lowered pipeline ready to run repeatedly."""

    def __init__(
        self,
        lowered: Lowered,
        backend: str = "interpret",
        kernel_cache: Optional[KernelCache] = None,
    ) -> None:
        self.lowered = lowered
        self.backend = _check_backend(backend)
        # explicit None-check: an empty cache is falsy (it has __len__)
        self.kernel_cache = (
            kernel_cache if kernel_cache is not None else DEFAULT_CACHE
        )
        self.output_name = lowered.output.name
        info = lowered.realizations[self.output_name]
        self.output_extents = tuple(as_int(e) for e in info.extents)
        self.output_dtype = lowered.output.dtype.element_of()
        #: kernel-cache key, computed once — the lowered stmt is immutable
        self._cache_key: Optional[str] = None
        #: batch-axis kernels per shared/stacked split; None records
        #: "no batched kernel exists" so failed splits are not retried
        # guarded-by: _batched_lock
        self._batched: Dict[FrozenSet[str], Optional[object]] = {}
        self._batched_lock = threading.Lock()
        # guarded-by: _batch_lock
        self._batched_plan: Optional[BatchedExecutionPlan] = None
        self._batch_lock = threading.Lock()
        #: optional ArtifactStore persisting batched kernels across
        #: processes; wired by repro.service.compile.compile_lowered
        self.artifact_store = None

    @property
    def cache_key(self) -> str:
        """The kernel-cache key (structural stmt fingerprint), memoized."""
        if self._cache_key is None:
            self._cache_key = fingerprint_stmt(self.lowered.stmt)
        return self._cache_key

    @property
    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss accounting of this pipeline's kernel cache.

        Keys: ``hits`` (in-memory), ``disk_hits`` (satisfied by the
        cache's disk tier), ``misses`` (codegen ran), ``entries``.
        Note the cache may be the shared process-wide default, in which
        case the counters aggregate over every pipeline using it.
        """
        return self.kernel_cache.stats()

    def seed_kernel(self, kernel) -> None:
        """Install a restored kernel so the first compiled run skips codegen.

        The warm-start path (:mod:`repro.service`) re-hydrates kernels
        from on-disk compile artifacts; seeding puts one into this
        pipeline's kernel cache under this pipeline's key.  A kernel
        whose recorded key disagrees with the lowered statement's
        fingerprint is rejected (it was compiled from different IR).
        """
        if kernel.key and kernel.key != self.cache_key:
            raise ValueError(
                f"kernel key {kernel.key[:12]}... does not match this"
                f" pipeline's statement ({self.cache_key[:12]}...)"
            )
        self.kernel_cache.put(self.cache_key, kernel)

    def plan(
        self,
        backend: Optional[str] = None,
        arena: Optional[BufferArena] = None,
    ) -> ExecutionPlan:
        """An :class:`~.plan.ExecutionPlan` pre-bound for repeated runs.

        The plan resolves the kernel once and reuses buffers, the
        stride environment, and an allocation arena across calls, so a
        steady-state ``plan.run(inputs)`` does no fingerprinting, no
        kernel-cache lookup, no env rebuild, and no input copy for
        contiguous correctly-typed arrays.  Plans are not thread-safe;
        create one per worker (:meth:`run_many` does).
        """
        mode = (
            _check_backend(backend) if backend is not None else self.backend
        )
        return ExecutionPlan(self, mode, arena=arena)

    def batched_kernel(self, stacked: FrozenSet[str]):
        """The batch-axis kernel for one shared/stacked input split.

        Resolved through the kernel cache under a batch-aware key
        (:func:`~.kernel_cache.batched_key`) and, when an artifact
        store is wired, persisted/restored across processes.  Returns
        ``None`` — and remembers the answer — when the statement cannot
        be batch-compiled for this split (per-request weights feeding a
        shuffle constructor, data-dependent addressing, ...).
        """
        from .codegen import CodegenError, compile_batched_stmt

        stacked = frozenset(stacked)
        with self._batched_lock:
            if stacked in self._batched:
                return self._batched[stacked]
        key = batched_key(self.cache_key, stacked)

        def build():
            if self.artifact_store is not None:
                restored = self.artifact_store.get_kernel(key)
                if restored is not None:
                    return restored
            kernel = compile_batched_stmt(
                self.lowered.stmt, stacked, key=key
            )
            if self.artifact_store is not None:
                self.artifact_store.put_kernel(key, kernel)
            return kernel

        try:
            kernel = self.kernel_cache.get_or_build(key, build)
        except CodegenError:
            kernel = None
        # the build runs outside the lock (it can take seconds); two
        # racing builders store the same cache-memoized kernel, so the
        # last write is harmless
        with self._batched_lock:
            self._batched[stacked] = kernel
        return kernel

    def _run_batched(self, requests: List[InputMap]) -> List[np.ndarray]:
        """One batch-axis kernel call for the whole bucket (locked —
        the batched plan is stateful and shared across callers)."""
        with self._batch_lock:
            if self._batched_plan is None:
                self._batched_plan = BatchedExecutionPlan(self)
            return self._batched_plan.run(requests)

    def run_many(
        self,
        requests: Sequence[Optional[InputMap]],
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        batch_axis: Optional[bool] = None,
        on_error: str = "raise",
    ) -> List[np.ndarray]:
        """Run a batch of same-shaped requests, optionally in parallel.

        On the compiled backend the whole bucket is first routed
        through one batch-axis kernel call
        (:class:`~.plan.BatchedExecutionPlan`): inputs whose array is
        the same object in every request (the serving idiom for
        weights) stay shared, the rest are stacked ``[B, ...]``.
        Buckets the batched path cannot take — ragged shapes,
        per-request weights feeding shuffle constructors, the
        interpreter backend — transparently fall back to the looped
        path below.  ``batch_axis=False`` forces the looped path;
        ``batch_axis=True`` skips the fallback and raises
        :class:`~.plan.BatchingUnsupported` instead.

        The looped path fans requests over ``workers`` threads (NumPy
        releases the GIL inside kernels), each with its own
        :class:`~.plan.ExecutionPlan` and arena.  Results are returned
        in request order and are bit-identical across all three paths.
        ``workers=None`` picks ``min(len(requests), cpu_count)``;
        ``workers=1`` runs the batch on one plan in the calling thread.
        Counters are not supported here — use :meth:`run` for
        instrumented executions.

        ``on_error`` selects the failure policy.  ``"raise"`` (the
        default) propagates the first failure.  ``"return"`` isolates
        failures per request: the returned list holds a
        :class:`RequestError` (original exception + traceback attached)
        at each failing index and real outputs everywhere else.  A
        batch-axis kernel failure cannot be pinned on one request — the
        bucket is one kernel call — so the bucket transparently re-runs
        on the looped path for isolation, unless ``batch_axis=True``
        was explicit (then the error propagates as-is).
        """
        if on_error not in ("raise", "return"):
            raise ValueError(
                f"on_error must be 'raise' or 'return', got {on_error!r}"
            )
        mode = (
            _check_backend(backend) if backend is not None else self.backend
        )
        requests = list(requests)
        if not requests:
            return []
        explicit = batch_axis is True
        if batch_axis is None:
            batch_axis = mode == "compile"
        if batch_axis:
            if mode != "compile":
                raise BatchingUnsupported(
                    "batch-axis execution requires the compiled backend"
                )
            try:
                return self._run_batched(requests)
            except BatchingUnsupported:
                if explicit:
                    raise
            except Exception:
                # a mid-kernel failure in the single batch-axis call
                # has no owning request; fall through to the looped
                # path so one bad request fails alone
                if explicit or on_error == "raise":
                    raise
        if workers is None:
            workers = os.cpu_count() or 1
        workers = max(1, min(int(workers), len(requests)))
        results: List[Optional[np.ndarray]] = [None] * len(requests)

        def run_span(start: int, stop: int) -> None:
            plan = self.plan(backend=mode)
            for i in range(start, stop):
                try:
                    results[i] = plan.run(requests[i])
                except Exception as exc:
                    if on_error == "raise":
                        raise
                    results[i] = RequestError(i, exc)
                    # a failed run may leave the plan's buffers in a
                    # partial state; rebuild it (cheap: cache hit)
                    plan = self.plan(backend=mode)

        if workers == 1:
            run_span(0, len(requests))
            return results
        chunk = -(-len(requests) // workers)  # ceil division

        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    run_span, start, min(start + chunk, len(requests))
                )
                for start in range(0, len(requests), chunk)
            ]
            for future in futures:
                future.result()  # propagate the first worker error
        return results

    def run(
        self,
        inputs: Optional[InputMap] = None,
        counters: Optional[Counters] = None,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        mode = (
            _check_backend(backend) if backend is not None else self.backend
        )
        if counters is not None:
            # instrumentation lives only in the interpreter
            mode = "interpret"
        # one wrapping + env rule shared with the plan path (plan.py)
        buffers, _ = bind_inputs(inputs or {})
        out = Buffer(
            self.output_name,
            self.output_dtype,
            self.output_extents,
            is_external=True,
        )
        buffers[self.output_name] = out
        env = stride_env(buffers)
        if mode == "compile":
            kernel = self.kernel_cache.get(self.lowered, key=self.cache_key)
            fire("kernel.compile")
            kernel(buffers, env)
            return out.to_numpy()
        fire("kernel.interpret")
        interp = Interpreter(buffers, counters)
        interp.run(self.lowered.stmt, env)
        if counters is not None:
            from .interpreter import memory_level

            for buf in buffers.values():
                level = memory_level(buf)
                counters.add_load(
                    f"{level}_unique", buf.load_footprint_bytes()
                )
                counters.add_store(
                    f"{level}_unique", buf.store_footprint_bytes()
                )
        return out.to_numpy()


def compile_pipeline(
    output: Func,
    backend: str = "interpret",
    kernel_cache: Optional[KernelCache] = None,
    **lower_kwargs,
) -> CompiledPipeline:
    return CompiledPipeline(
        lower(output, **lower_kwargs),
        backend=backend,
        kernel_cache=kernel_cache,
    )


def realize(
    output: Func,
    inputs: Optional[InputMap] = None,
    counters: Optional[Counters] = None,
    backend: str = "interpret",
    kernel_cache: Optional[KernelCache] = None,
    **lower_kwargs,
) -> np.ndarray:
    """One-shot: lower, run, and return the output as a numpy array.

    The output array follows numpy convention (outermost dimension first);
    the Func's first argument is the last numpy axis.  ``kernel_cache``
    lets one-shot callers route codegen through a private or
    disk-tiered cache instead of the process-wide default.
    """
    return compile_pipeline(
        output, backend=backend, kernel_cache=kernel_cache, **lower_kwargs
    ).run(inputs, counters)
