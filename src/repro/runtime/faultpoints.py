"""Low-level fault-point indirection.

The runtime's failure-injection seams (``ExecutionPlan.run``,
``BufferArena.take``, the artifact store's read/write paths) all route
through :func:`fire`.  By default it is a no-op costing one global
check; :mod:`repro.service.faults` installs an active
:class:`~repro.service.faults.FaultPlan` here, which turns each seam
into a deterministic injection site.

This module deliberately lives *below* the service layer and imports
nothing, so runtime modules can call :func:`fire` without creating an
import cycle with :mod:`repro.service`.

Sites currently wired:

========================  ====================================================
``kernel.compile``        before a compiled-kernel invocation (plan, batched
                          plan, and ``CompiledPipeline.run``)
``kernel.interpret``      before an interpreter execution of the statement
``arena.alloc``           inside ``BufferArena.take``/``take_batched``
``store.read``            before an artifact/kernel payload is read from disk
``store.write``           before an artifact/kernel payload is persisted
``shm.read``              after a shared-memory frame is mapped by its reader,
                          before the CRC check (``ShmRing.read``); context
                          carries the writable payload view as ``buf``
``shm.write``             before a shared-memory frame is published
                          (``ShmRing.publish``), before its CRC is computed
========================  ====================================================
"""

from __future__ import annotations

from typing import Callable, Optional

#: the active plan's fire callable, or None (no injection).  Installed
#: and cleared by ``repro.service.faults.install``/``uninstall``.
_fire: Optional[Callable[..., None]] = None


def fire(site: str, **context) -> None:
    """Visit the fault point ``site``; a no-op unless a plan is active.

    An active plan may raise (injected error), sleep (injected hang or
    slow IO), mutate on-disk state (injected corruption), or kill the
    process (injected worker crash) — see
    :class:`repro.service.faults.FaultPlan`.
    """
    hook = _fire
    if hook is not None:
        hook(site, **context)


def active() -> bool:
    """Whether a fault plan is currently installed in this process."""
    return _fire is not None
