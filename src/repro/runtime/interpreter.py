"""A direct interpreter for the lowered IR with vector semantics.

Scalar values are Python numbers; vector values are 1-D numpy arrays whose
length equals the expression's lane count.  The interpreter doubles as the
project's instrumentation layer: every load, store, floating-point lane
operation, and tensor intrinsic is recorded in :class:`Counters`, which the
roofline performance model consumes.

Tensor intrinsics (``tile_matmul``, ``wmma_mma_sync``, shuffle
constructors, ...) are dispatched through a registry that the target
simulators populate at import time.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

import numpy as np

from ..ir import expr as E
from ..ir import stmt as S
from ..ir.stmt import ForKind, MemoryType
from ..ir.types import DataType, TypeCode
from ..targets.bfloat16 import round_to_bfloat16
from .buffer import Buffer
from .counters import Counters

IntrinsicHandler = Callable[["Interpreter", E.Call, dict], object]

INTRINSICS: Dict[str, IntrinsicHandler] = {}


def register_intrinsic(name: str):
    """Class-level registry hook used by the target simulators."""

    def decorator(fn: IntrinsicHandler) -> IntrinsicHandler:
        INTRINSICS[name] = fn
        return fn

    return decorator


def memory_level(buffer: Buffer) -> str:
    """Traffic-accounting level for a buffer.

    External buffers and heap intermediates (compute_root stages) live in
    DRAM; stack intermediates (compute_at tiles) live in L1/local memory.
    """
    if buffer.memory_type in (
        MemoryType.AMX_TILE,
        MemoryType.WMMA_ACCUMULATOR,
        MemoryType.DP4A_ACCUMULATOR,
        MemoryType.REGISTER,
    ):
        return "reg"
    if buffer.memory_type is MemoryType.GPU_SHARED:
        return "shared"
    if buffer.is_external or buffer.memory_type is MemoryType.HEAP:
        return "dram"
    return "l1"


class EvalError(RuntimeError):
    pass


def _np_dtype(dtype: DataType):
    return dtype.to_numpy()


# -- shared vector-semantics cores ---------------------------------------------
#
# Both backends evaluate vector IR with these exact functions: the
# interpreter calls them per node, the compiled backend (runtime/codegen)
# injects them into generated kernels.  Keeping one copy is what makes
# the backends' bit-for-bit parity contract hold by construction.


def ramp_value(base, stride, count: int):
    """``ramp(base, stride, count)`` over scalar or vector base/stride."""
    steps = np.arange(count)
    if isinstance(base, np.ndarray) or isinstance(stride, np.ndarray):
        base = np.atleast_1d(np.asarray(base))
        stride = np.atleast_1d(np.asarray(stride))
        if base.size == 1 and stride.size > 1:
            base = np.full_like(stride, base[0])
        if stride.size == 1 and base.size > 1:
            stride = np.full_like(base, stride[0])
        return (base[None, :] + steps[:, None] * stride[None, :]).ravel()
    return base + steps * stride


def broadcast_value(value, count: int, np_dtype):
    """``xN(value)``: scalars take the IR element dtype, vectors tile."""
    if isinstance(value, np.ndarray):
        return np.tile(value, count)
    return np.full(count, value, dtype=np_dtype)


def as_vector(value, lanes: int) -> np.ndarray:
    """Normalize a scalar-or-array value to a 1-D array of ``lanes``."""
    arr = np.asarray(value)
    if arr.ndim == 0:
        arr = np.full(lanes, arr[()])
    return arr


def reduce_groups(value: np.ndarray, result_lanes: int) -> np.ndarray:
    """Sum fixed-size groups of adjacent lanes down to ``result_lanes``."""
    groups = value.reshape(result_lanes, -1)
    return groups.sum(axis=1, dtype=groups.dtype)


def tile_index(base, stride, rows: int, cols: int) -> np.ndarray:
    """Flat indices of a rows x cols tile at ``base`` with a row stride.

    The addressing scheme every tile/fragment load-store intrinsic uses
    (AMX ``tile_load``/``tile_store``, WMMA ``wmma.load/store.*.sync``).
    """
    return (
        base + np.arange(rows)[:, None] * stride + np.arange(cols)
    ).ravel()


class Interpreter:
    """Evaluates statements against a set of named buffers."""

    def __init__(
        self,
        buffers: Dict[str, Buffer],
        counters: Optional[Counters] = None,
    ) -> None:
        self.buffers = dict(buffers)
        self.counters = counters if counters is not None else Counters()
        #: scratch state shared with accelerator simulators
        self.target_state: Dict[str, object] = {}

    # -- public entry points -------------------------------------------------

    def run(self, stmt: S.Stmt, env: Optional[dict] = None) -> None:
        self.exec_stmt(stmt, env or {})

    # -- expression evaluation -------------------------------------------------

    def eval_expr(self, e: E.Expr, env: dict):
        method = getattr(self, f"_eval_{type(e).__name__}", None)
        if method is None:
            raise EvalError(f"cannot evaluate {type(e).__name__}")
        return method(e, env)

    def eval_vector(self, e: E.Expr, env: dict) -> np.ndarray:
        """Evaluate and normalize to a 1-D numpy array of ``e.lanes``."""
        return as_vector(self.eval_expr(e, env), e.type.lanes)

    def eval_int(self, e: E.Expr, env: dict) -> int:
        value = self.eval_expr(e, env)
        if isinstance(value, np.ndarray):
            if value.size != 1:
                raise EvalError(f"expected scalar, got vector of {value.size}")
            value = value[0]
        return int(value)

    # -- leaves ---------------------------------------------------------------

    def _eval_IntImm(self, e: E.IntImm, env):
        return e.value

    def _eval_FloatImm(self, e: E.FloatImm, env):
        return e.value

    def _eval_StringImm(self, e: E.StringImm, env):
        return e.value

    def _eval_Variable(self, e: E.Variable, env):
        if e.name not in env:
            raise EvalError(f"unbound variable {e.name!r}")
        return env[e.name]

    # -- arithmetic -------------------------------------------------------------

    def _count_float_op(self, e: E.Expr) -> None:
        if e.type.is_float():
            self.counters.scalar_flops += e.type.lanes
        else:
            self.counters.int_ops += e.type.lanes

    def _binary_operands(self, e, env):
        a = self.eval_expr(e.a, env)
        b = self.eval_expr(e.b, env)
        return a, b

    def _eval_Add(self, e, env):
        a, b = self._binary_operands(e, env)
        self._count_float_op(e)
        return a + b

    def _eval_Sub(self, e, env):
        a, b = self._binary_operands(e, env)
        self._count_float_op(e)
        return a - b

    def _eval_Mul(self, e, env):
        a, b = self._binary_operands(e, env)
        self._count_float_op(e)
        return a * b

    def _eval_Div(self, e, env):
        a, b = self._binary_operands(e, env)
        self._count_float_op(e)
        if e.type.is_float():
            return a / b
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np.asarray(a) // np.asarray(b)
        return a // b  # Halide rounds toward negative infinity

    def _eval_Mod(self, e, env):
        a, b = self._binary_operands(e, env)
        self._count_float_op(e)
        if e.type.is_float():
            return np.fmod(a, b)
        return a % b  # numpy/python % matches Halide's Euclidean mod

    def _eval_Min(self, e, env):
        a, b = self._binary_operands(e, env)
        self._count_float_op(e)
        return np.minimum(a, b)

    def _eval_Max(self, e, env):
        a, b = self._binary_operands(e, env)
        self._count_float_op(e)
        return np.maximum(a, b)

    def _eval_EQ(self, e, env):
        a, b = self._binary_operands(e, env)
        return a == b

    def _eval_NE(self, e, env):
        a, b = self._binary_operands(e, env)
        return a != b

    def _eval_LT(self, e, env):
        a, b = self._binary_operands(e, env)
        return a < b

    def _eval_LE(self, e, env):
        a, b = self._binary_operands(e, env)
        return a <= b

    def _eval_GT(self, e, env):
        a, b = self._binary_operands(e, env)
        return a > b

    def _eval_GE(self, e, env):
        a, b = self._binary_operands(e, env)
        return a >= b

    def _eval_And(self, e, env):
        a, b = self._binary_operands(e, env)
        return np.logical_and(a, b)

    def _eval_Or(self, e, env):
        a, b = self._binary_operands(e, env)
        return np.logical_or(a, b)

    def _eval_Not(self, e, env):
        return np.logical_not(self.eval_expr(e.value, env))

    def _eval_Select(self, e, env):
        cond = self.eval_expr(e.condition, env)
        t = self.eval_expr(e.true_value, env)
        f = self.eval_expr(e.false_value, env)
        return np.where(cond, t, f)

    # -- casts -----------------------------------------------------------------

    def _eval_Cast(self, e: E.Cast, env):
        value = self.eval_expr(e.value, env)
        target = e.dtype
        if target.code is TypeCode.BFLOAT:
            return round_to_bfloat16(np.asarray(value, dtype=np.float32))
        np_dtype = _np_dtype(target)
        if isinstance(value, np.ndarray):
            if target.is_int() or target.is_uint():
                # C-style truncation toward zero for float -> int casts
                return np.trunc(value).astype(np_dtype) if value.dtype.kind == "f" else value.astype(np_dtype)
            return value.astype(np_dtype)
        if target.is_float():
            return np_dtype.type(value)
        return int(value)

    # -- vectors ---------------------------------------------------------------

    def _eval_Ramp(self, e: E.Ramp, env):
        base = self.eval_expr(e.base, env)
        stride = self.eval_expr(e.stride, env)
        return ramp_value(base, stride, e.count)

    def _eval_Broadcast(self, e: E.Broadcast, env):
        value = self.eval_expr(e.value, env)
        return broadcast_value(value, e.count, _np_dtype(e.type.element_of()))

    def _eval_VectorReduce(self, e: E.VectorReduce, env):
        value = self.eval_vector(e.value, env)
        if e.type.is_float():
            self.counters.scalar_flops += value.size - e.result_lanes
        return reduce_groups(value, e.result_lanes)

    def _eval_Shuffle(self, e: E.Shuffle, env):
        parts = [self.eval_vector(v, env) for v in e.vectors]
        concat = np.concatenate(parts) if len(parts) > 1 else parts[0]
        return concat[list(e.indices)]

    # -- memory ------------------------------------------------------------------

    def buffer(self, name: str) -> Buffer:
        if name not in self.buffers:
            raise EvalError(f"unknown buffer {name!r}")
        return self.buffers[name]

    def _eval_Load(self, e: E.Load, env):
        buf = self.buffer(e.name)
        idx = self.eval_expr(e.index, env)
        idx_arr = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        if np.any(idx_arr < 0) or np.any(idx_arr >= buf.size):
            raise EvalError(
                f"load out of bounds on {e.name!r}: index range "
                f"[{idx_arr.min()}, {idx_arr.max()}], size {buf.size}"
            )
        values = buf.gather(idx_arr)
        self.counters.add_load(
            memory_level(buf), idx_arr.size * buf.dtype.bytes_per_lane()
        )
        if e.type.lanes == 1:
            return values[0]
        return values

    # -- other -----------------------------------------------------------------

    def _eval_Let(self, e: E.Let, env):
        value = self.eval_expr(e.value, env)
        inner = dict(env)
        inner[e.name] = value
        return self.eval_expr(e.body, inner)

    def _eval_Call(self, e: E.Call, env):
        handler = INTRINSICS.get(e.name)
        if handler is None:
            raise EvalError(f"no intrinsic handler for {e.name!r}")
        self.counters.intrinsic_calls[e.name] += 1
        return handler(self, e, env)

    # -- statements ---------------------------------------------------------------

    def exec_stmt(self, stmt: S.Stmt, env: dict) -> None:
        method = getattr(self, f"_exec_{type(stmt).__name__}", None)
        if method is None:
            raise EvalError(f"cannot execute {type(stmt).__name__}")
        method(stmt, env)

    def _exec_Store(self, stmt: S.Store, env) -> None:
        buf = self.buffer(stmt.name)
        idx = self.eval_expr(stmt.index, env)
        idx_arr = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        value = self.eval_expr(stmt.value, env)
        value_arr = np.atleast_1d(np.asarray(value))
        if value_arr.size == 1 and idx_arr.size > 1:
            value_arr = np.full(idx_arr.size, value_arr[0])
        if np.any(idx_arr < 0) or np.any(idx_arr >= buf.size):
            raise EvalError(
                f"store out of bounds on {stmt.name!r}: index range "
                f"[{idx_arr.min()}, {idx_arr.max()}], size {buf.size}"
            )
        buf.scatter(idx_arr, value_arr.astype(buf.data.dtype, copy=False))
        self.counters.add_store(
            memory_level(buf), idx_arr.size * buf.dtype.bytes_per_lane()
        )
        self.counters.stores_executed += 1

    def _exec_For(self, stmt: S.For, env) -> None:
        start = self.eval_int(stmt.min_expr, env)
        extent = self.eval_int(stmt.extent, env)
        self.counters.loop_iterations[stmt.kind.value] += max(extent, 0)
        if stmt.kind is ForKind.GPU_LANE:
            # WMMA statements are warp-collective: the body computes the
            # whole tile, so the lane loop executes once in simulation.
            inner = dict(env)
            inner[stmt.name] = start
            self.exec_stmt(stmt.body, inner)
            return
        inner = dict(env)
        for i in range(start, start + extent):
            inner[stmt.name] = i
            self.exec_stmt(stmt.body, inner)

    def _exec_Block(self, stmt: S.Block, env) -> None:
        for part in stmt.stmts:
            self.exec_stmt(part, env)

    def _exec_Allocate(self, stmt: S.Allocate, env) -> None:
        extents = tuple(self.eval_int(e, env) for e in stmt.extents)
        saved = self.buffers.get(stmt.name)
        self.buffers[stmt.name] = Buffer(
            stmt.name,
            stmt.dtype.element_of(),
            extents,
            memory_type=stmt.memory_type,
            is_external=False,
        )
        try:
            self.exec_stmt(stmt.body, env)
        finally:
            freed = self.buffers[stmt.name]
            level = memory_level(freed)
            self.counters.add_load(
                f"{level}_unique", freed.load_footprint_bytes()
            )
            self.counters.add_store(
                f"{level}_unique", freed.store_footprint_bytes()
            )
            if saved is None:
                del self.buffers[stmt.name]
            else:
                self.buffers[stmt.name] = saved

    def _exec_LetStmt(self, stmt: S.LetStmt, env) -> None:
        inner = dict(env)
        inner[stmt.name] = self.eval_expr(stmt.value, env)
        self.exec_stmt(stmt.body, inner)

    def _exec_IfThenElse(self, stmt: S.IfThenElse, env) -> None:
        cond = self.eval_expr(stmt.condition, env)
        if isinstance(cond, np.ndarray):
            cond = bool(cond.all())
        if cond:
            self.exec_stmt(stmt.then_case, env)
        elif stmt.else_case is not None:
            self.exec_stmt(stmt.else_case, env)

    def _exec_Evaluate(self, stmt: S.Evaluate, env) -> None:
        self.eval_expr(stmt.value, env)

    def _exec_ProducerConsumer(self, stmt: S.ProducerConsumer, env) -> None:
        self.exec_stmt(stmt.body, env)


# -- built-in math intrinsics -------------------------------------------------


def _unary_math(np_fn, flops_per_lane: int = 1):
    def handler(interp: Interpreter, call: E.Call, env):
        value = interp.eval_expr(call.args[0], env)
        interp.counters.scalar_flops += call.type.lanes * flops_per_lane
        return np_fn(value)

    return handler


INTRINSICS["exp"] = _unary_math(np.exp, flops_per_lane=4)
INTRINSICS["log"] = _unary_math(np.log, flops_per_lane=4)
INTRINSICS["sqrt"] = _unary_math(np.sqrt, flops_per_lane=2)
INTRINSICS["abs"] = _unary_math(np.abs)
INTRINSICS["floor"] = _unary_math(np.floor)
INTRINSICS["sin"] = _unary_math(np.sin, flops_per_lane=4)
INTRINSICS["cos"] = _unary_math(np.cos, flops_per_lane=4)
