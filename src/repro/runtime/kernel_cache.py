"""Memoization of compiled NumPy kernels keyed on the lowered statement.

Compiling a lowered statement to Python source (see :mod:`.codegen`) is
cheap but not free, and production pipelines re-realize the same
schedule thousands of times.  The cache key is a *structural*
fingerprint of the lowered statement tree: two ``lower()`` calls over
the same Func DAG with the same schedule produce equal statements and
therefore hit the same cached kernel, while any schedule change (a
different split factor, vector width, storage annotation, ...) alters
the statement and misses.

The IR is built from frozen dataclasses whose ``repr`` is complete and
deterministic (every field, recursively, including dtypes and loop
kinds), so hashing the repr is a stable fingerprint without a bespoke
serializer.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

from ..ir import Stmt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..lowering.pipeline import Lowered
    from .codegen import CompiledKernel


def fingerprint_stmt(stmt: Stmt) -> str:
    """A stable content hash of a lowered statement tree."""
    return hashlib.sha256(repr(stmt).encode("utf-8")).hexdigest()


class KernelCache:
    """An LRU cache of compiled kernels with hit/miss accounting."""

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._kernels: "OrderedDict[str, CompiledKernel]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._kernels)

    def clear(self) -> None:
        self._kernels.clear()
        self.hits = 0
        self.misses = 0

    def lookup(self, key: str) -> Optional["CompiledKernel"]:
        kernel = self._kernels.get(key)
        if kernel is not None:
            self._kernels.move_to_end(key)
        return kernel

    def get(
        self, lowered: "Lowered", key: Optional[str] = None
    ) -> "CompiledKernel":
        """The compiled kernel for ``lowered.stmt``, compiling on miss.

        Callers that run repeatedly should precompute ``key`` once
        (:func:`fingerprint_stmt` walks the whole statement repr).
        """
        from .codegen import compile_stmt

        if key is None:
            key = fingerprint_stmt(lowered.stmt)
        kernel = self.lookup(key)
        if kernel is not None:
            self.hits += 1
            return kernel
        self.misses += 1
        kernel = compile_stmt(lowered.stmt, key=key)
        self._kernels[key] = kernel
        while len(self._kernels) > self.maxsize:
            self._kernels.popitem(last=False)
        return kernel


#: process-wide cache used by :class:`repro.runtime.executor.CompiledPipeline`
#: unless a private cache is passed in.
DEFAULT_CACHE = KernelCache()
