"""Memoization of compiled NumPy kernels keyed on the lowered statement.

Compiling a lowered statement to Python source (see :mod:`.codegen`) is
cheap but not free, and production pipelines re-realize the same
schedule thousands of times.  The cache key is a *structural*
fingerprint of the lowered statement tree: two ``lower()`` calls over
the same Func DAG with the same schedule produce equal statements and
therefore hit the same cached kernel, while any schedule change (a
different split factor, vector width, storage annotation, ...) alters
the statement and misses.

The IR is built from frozen dataclasses whose ``repr`` is complete and
deterministic (every field, recursively, including dtypes and loop
kinds), so hashing the repr is a stable fingerprint without a bespoke
serializer.

The cache has two tiers:

* an in-memory LRU (always on) — hits cost a dict lookup;
* an optional on-disk tier (``disk_dir=...``) — kernels are persisted
  as pickled source + injected constants
  (:func:`repro.runtime.codegen.serialize_kernel`), so a *fresh
  process* re-hydrates a kernel instead of re-running codegen.  Disk
  writes are atomic (write-to-temp + ``os.replace``), so any number of
  concurrent processes may share one directory.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Optional

from ..ir import Stmt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..lowering.pipeline import Lowered
    from .codegen import CompiledKernel


def fingerprint_stmt(stmt: Stmt) -> str:
    """A stable content hash of a lowered statement tree."""
    return hashlib.sha256(repr(stmt).encode("utf-8")).hexdigest()


def batched_key(key: str, stacked) -> str:
    """The batch-aware cache key for a batch-axis kernel variant.

    A statement has one scalar kernel but potentially several batched
    variants — one per shared/stacked input split (e.g. shared weights
    vs. a B=1 bucket where everything is shared) — so the stacked-name
    set is folded into the key alongside the statement fingerprint.
    """
    digest = hashlib.sha256(
        "\x00".join(sorted(stacked)).encode("utf-8")
    ).hexdigest()
    return f"{key}-b{digest[:16]}"


#: everything a pickled payload written by another (possibly newer or
#: older) process can throw while being loaded or re-hydrated: torn
#: bytes, renamed classes/modules, format drift.  Shared by this
#: module's disk tier and :mod:`repro.service.store` so the two
#: content-addressed stores never disagree on what "corrupt" means.
PICKLE_LOAD_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    OSError,
    KeyError,
    IndexError,
    AttributeError,
    ImportError,
    SyntaxError,
    ValueError,
    TypeError,
)


#: header of every checksummed payload file: magic + format byte
FRAME_MAGIC = b"RPROF\x01"


class ChecksumError(ValueError):
    """A framed payload failed its integrity check (torn or bit-rotted)."""


def frame_blob(blob: bytes) -> bytes:
    """Wrap ``blob`` in the checksummed on-disk frame.

    Layout: ``FRAME_MAGIC + sha256(blob) + blob``.  The checksum lets
    readers distinguish a torn or bit-rotted file from a valid payload
    *before* handing bytes to the pickle layer — corruption becomes a
    typed :class:`ChecksumError` instead of undefined unpickling
    behavior.
    """
    return FRAME_MAGIC + hashlib.sha256(blob).digest() + blob


def unframe_blob(data: bytes) -> bytes:
    """Verify and strip the frame written by :func:`frame_blob`.

    Raises :class:`ChecksumError` on a missing/unknown header or a
    checksum mismatch — never returns unverified bytes.
    """
    header = len(FRAME_MAGIC)
    if len(data) < header + 32 or not data.startswith(FRAME_MAGIC):
        raise ChecksumError("missing or unknown payload frame header")
    digest = data[header : header + 32]
    blob = data[header + 32 :]
    if hashlib.sha256(blob).digest() != digest:
        raise ChecksumError("payload checksum mismatch (corrupt file)")
    return blob


def sharded_path(root: str, key: str, suffix: str) -> str:
    """``<root>/<key[:2]>/<key><suffix>`` — the shared content-addressed
    disk layout (two-level sharding keeps directories small)."""
    return os.path.join(root, key[:2], key + suffix)


def atomic_write_bytes(path: str, blob: bytes) -> None:
    """Write ``blob`` to ``path`` atomically (temp file + rename).

    Readers either see the old contents or the new contents, never a
    torn write — concurrent writers simply race on who renames last.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class KernelCache:
    """A two-tier (LRU + optional disk) kernel cache with accounting.

    Thread-safe: the in-memory LRU and its counters are guarded by a
    lock, so any number of serving workers (``run_many`` plans, a
    :class:`repro.service.Server`'s thread pool) may share one cache —
    including the process-wide default.  Codegen itself runs outside
    the lock; two threads racing on the same miss simply compile
    equivalent kernels and the last ``put`` wins.
    """

    def __init__(
        self, maxsize: int = 256, disk_dir: Optional[str] = None
    ) -> None:
        self.maxsize = maxsize
        self.disk_dir = disk_dir
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        #: in-memory misses satisfied by the disk tier (a fresh process
        #: skipping codegen); disk hits are not counted as misses
        self.disk_hits = 0  # guarded-by: _lock
        # guarded-by: _lock
        self._kernels: "OrderedDict[str, CompiledKernel]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._kernels)

    def clear(self) -> None:
        """Drop the in-memory tier and reset counters (disk survives)."""
        with self._lock:
            self._kernels.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: hits / misses / disk_hits / entries."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "entries": len(self._kernels),
            }

    def lookup(self, key: str) -> Optional["CompiledKernel"]:
        with self._lock:
            kernel = self._kernels.get(key)
            if kernel is not None:
                self._kernels.move_to_end(key)
            return kernel

    def put(self, key: str, kernel: "CompiledKernel") -> None:
        """Install a kernel (e.g. one restored from a compile artifact)."""
        with self._lock:
            self._kernels[key] = kernel
            self._kernels.move_to_end(key)
            while len(self._kernels) > self.maxsize:
                self._kernels.popitem(last=False)

    def get(
        self, lowered: "Lowered", key: Optional[str] = None
    ) -> "CompiledKernel":
        """The compiled kernel for ``lowered.stmt``, compiling on miss.

        Callers that run repeatedly should precompute ``key`` once
        (:func:`fingerprint_stmt` walks the whole statement repr).
        """
        from .codegen import compile_stmt

        if key is None:
            key = fingerprint_stmt(lowered.stmt)
        kernel = self.lookup(key)
        if kernel is not None:
            with self._lock:
                self.hits += 1
            return kernel
        # compile / disk-load outside the lock: codegen is slow and
        # pure, so racing threads at worst duplicate work, never block
        # every other pipeline in the process behind one compile
        kernel = self._disk_load(key)
        if kernel is not None:
            with self._lock:
                self.disk_hits += 1
            self.put(key, kernel)
            return kernel
        with self._lock:
            self.misses += 1
        kernel = compile_stmt(lowered.stmt, key=key)
        self.put(key, kernel)
        self._disk_store(kernel)
        return kernel

    def get_or_build(self, key: str, build) -> "CompiledKernel":
        """Memoize an arbitrary kernel builder under ``key``.

        Same two-tier discipline as :meth:`get` (memory, then disk,
        then ``build()``), for kernels that are not the plain
        ``compile_stmt`` of a statement — the batch-axis variants keyed
        by :func:`batched_key`.  ``build`` exceptions propagate and
        nothing is cached for them.
        """
        kernel = self.lookup(key)
        if kernel is not None:
            with self._lock:
                self.hits += 1
            return kernel
        kernel = self._disk_load(key)
        if kernel is not None:
            with self._lock:
                self.disk_hits += 1
            self.put(key, kernel)
            return kernel
        with self._lock:
            self.misses += 1
        kernel = build()
        self.put(key, kernel)
        self._disk_store(kernel)
        return kernel

    # -- disk tier -------------------------------------------------------------

    def _disk_path(self, key: str) -> str:
        return sharded_path(self.disk_dir, key, ".kernel")

    def _disk_load(self, key: str) -> Optional["CompiledKernel"]:
        if self.disk_dir is None:
            return None
        from .codegen import CodegenError, deserialize_kernel

        path = self._disk_path(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if payload.get("key") != key:
                return None
            return deserialize_kernel(payload)
        except FileNotFoundError:
            return None
        except (CodegenError, *PICKLE_LOAD_ERRORS):
            # stale format / torn legacy file / unimportable constant:
            # drop it and let the caller recompile
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def _disk_store(self, kernel: "CompiledKernel") -> None:
        if self.disk_dir is None or not kernel.key:
            return
        from .codegen import serialize_kernel

        payload = serialize_kernel(kernel)
        if payload is None:  # interpreter fallback: cheap to rebuild
            return
        atomic_write_bytes(
            self._disk_path(kernel.key),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )


#: process-wide cache used by :class:`repro.runtime.executor.CompiledPipeline`
#: unless a private cache is passed in.
DEFAULT_CACHE = KernelCache()
