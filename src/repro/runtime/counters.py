"""Execution counters recorded by the interpreter.

These are the honest inputs to the roofline performance model: scalar
(CUDA-core) FLOPs, tensor-unit MACs, and memory traffic split by level.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Counters:
    """Mutable op/byte counters accumulated during interpretation."""

    #: floating point ops executed on general-purpose (CUDA/SIMD) lanes
    scalar_flops: int = 0
    #: multiply-accumulates executed on the tensor unit (1 MAC = 2 FLOPs)
    tensor_macs: int = 0
    #: int8 multiply-accumulates executed on the dot-product unit
    #: (VNNI/DP4A); integer work, so not counted in total_flops
    int8_macs: int = 0
    #: integer ALU ops (index arithmetic); cheap but tracked for ablations
    int_ops: int = 0
    #: total bytes moved by Load nodes, keyed by buffer memory level
    load_bytes: Dict[str, int] = field(default_factory=dict)
    #: total bytes moved by Store nodes, keyed by buffer memory level
    store_bytes: Dict[str, int] = field(default_factory=dict)
    #: intrinsic call counts by name
    intrinsic_calls: Counter = field(default_factory=Counter)
    #: loop trip counts by loop kind
    loop_iterations: Counter = field(default_factory=Counter)
    #: number of Store statements executed
    stores_executed: int = 0

    def add_load(self, level: str, nbytes: int) -> None:
        self.load_bytes[level] = self.load_bytes.get(level, 0) + nbytes

    def add_store(self, level: str, nbytes: int) -> None:
        self.store_bytes[level] = self.store_bytes.get(level, 0) + nbytes

    def total_load_bytes(self) -> int:
        return sum(self.load_bytes.values())

    def total_store_bytes(self) -> int:
        return sum(self.store_bytes.values())

    def total_flops(self) -> int:
        """All floating-point work, counting a MAC as two FLOPs."""
        return self.scalar_flops + 2 * self.tensor_macs

    def scaled(self, factor: float) -> "Counters":
        """Counters for a problem ``factor`` times larger.

        The pipelines in this project are static loop nests, so every
        counter scales linearly with the iteration domain.  Used to
        extrapolate interpreted runs of reduced-size workloads to the
        paper's full sizes.  Entries round to nearest: truncation would
        systematically under-report every counter whenever the scale
        factor is not an integer.
        """

        def scale(v) -> int:
            return int(round(v * factor))

        scaled = Counters(
            scalar_flops=scale(self.scalar_flops),
            tensor_macs=scale(self.tensor_macs),
            int8_macs=scale(self.int8_macs),
            int_ops=scale(self.int_ops),
            stores_executed=scale(self.stores_executed),
        )
        scaled.load_bytes = {
            k: scale(v) for k, v in self.load_bytes.items()
        }
        scaled.store_bytes = {
            k: scale(v) for k, v in self.store_bytes.items()
        }
        scaled.intrinsic_calls = Counter(
            {k: scale(v) for k, v in self.intrinsic_calls.items()}
        )
        scaled.loop_iterations = Counter(
            {k: scale(v) for k, v in self.loop_iterations.items()}
        )
        return scaled

    def merge(self, other: "Counters") -> None:
        self.scalar_flops += other.scalar_flops
        self.tensor_macs += other.tensor_macs
        self.int8_macs += other.int8_macs
        self.int_ops += other.int_ops
        self.stores_executed += other.stores_executed
        for k, v in other.load_bytes.items():
            self.add_load(k, v)
        for k, v in other.store_bytes.items():
            self.add_store(k, v)
        self.intrinsic_calls.update(other.intrinsic_calls)
        self.loop_iterations.update(other.loop_iterations)

    def summary(self) -> str:
        lines = [
            f"scalar_flops      = {self.scalar_flops:,}",
            f"tensor_macs       = {self.tensor_macs:,}",
            f"int8_macs         = {self.int8_macs:,}",
            f"load_bytes        = {dict(self.load_bytes)}",
            f"store_bytes       = {dict(self.store_bytes)}",
            f"intrinsics        = {dict(self.intrinsic_calls)}",
        ]
        return "\n".join(lines)
