"""Numpy-backed buffers with Halide's dimension convention.

Halide (and this repo) writes the *innermost* dimension first:
``extents[0]`` is the fastest-varying axis.  A numpy array's *last* axis
is fastest-varying, so conversion reverses the shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..ir.stmt import MemoryType
from ..ir.types import DataType, TypeCode
from ..targets.bfloat16 import round_to_bfloat16


class Buffer:
    """A flat, typed allocation addressed by flattened indices.

    Parameters
    ----------
    name:
        Buffer name as referenced by ``Load``/``Store`` nodes.
    dtype:
        Scalar element type.  bfloat16 elements are stored as float32
        holding bf16-rounded values.
    extents:
        Sizes per dimension, innermost first.
    memory_type:
        Where the buffer notionally lives; drives traffic accounting.
    is_external:
        True for pipeline inputs/outputs (counted as DRAM traffic).
    data:
        Initial contents.  A C-contiguous array of the buffer's exact
        numpy dtype is wrapped **zero-copy** — ``self.data`` is a flat
        view sharing the caller's memory.  A copy is made only when one
        is unavoidable: a dtype conversion, a non-contiguous source, or
        bfloat16 rounding.  Pipeline inputs are never stored to, so the
        view is safe; callers that intend to mutate the buffer
        independently of the source array should pass a copy.
    """

    def __init__(
        self,
        name: str,
        dtype: DataType,
        extents: Tuple[int, ...],
        memory_type: MemoryType = MemoryType.HEAP,
        is_external: bool = False,
        data: Optional[np.ndarray] = None,
    ) -> None:
        if dtype.lanes != 1:
            raise ValueError("buffers hold scalar element types")
        self.name = name
        self.dtype = dtype
        self.extents = tuple(int(e) for e in extents)
        self.memory_type = memory_type
        self.is_external = is_external
        self.size = int(np.prod(self.extents)) if self.extents else 1
        np_dtype = dtype.to_numpy()
        if data is None:
            self.data = np.zeros(self.size, dtype=np_dtype)
        else:
            # asarray is a no-op for a correctly-typed ndarray, and
            # ravel() of a C-contiguous array is a view: a contiguous,
            # correctly-typed input is wrapped without copying.  dtype
            # conversion and non-contiguous layouts each cost exactly
            # one copy (asarray / ravel respectively) — never two.
            flat = np.asarray(data, dtype=np_dtype).ravel()
            if flat.size != self.size:
                raise ValueError(
                    f"data size {flat.size} != buffer size {self.size}"
                )
            if dtype.code is TypeCode.BFLOAT:
                # rounding allocates fresh storage, so bf16 ingest
                # still isolates the buffer from the source array
                flat = round_to_bfloat16(flat)
            self.data = flat
        # per-element touched masks for footprint accounting; allocated
        # lazily so the compiled backend (which reads/writes .data
        # directly and never gathers) pays nothing for instrumentation
        self._load_mask: Optional[np.ndarray] = None
        self._store_mask: Optional[np.ndarray] = None
        #: memoized dense strides — extents are immutable and the
        #: interpreter's ``flatten_index`` reads this per element
        self._strides: Optional[Tuple[int, ...]] = None

    @property
    def load_mask(self) -> np.ndarray:
        if self._load_mask is None:
            self._load_mask = np.zeros(self.size, dtype=bool)
        return self._load_mask

    @property
    def store_mask(self) -> np.ndarray:
        if self._store_mask is None:
            self._store_mask = np.zeros(self.size, dtype=bool)
        return self._store_mask

    # -- strides (dense, innermost first) -----------------------------------

    @property
    def strides(self) -> Tuple[int, ...]:
        if self._strides is None:
            strides = []
            acc = 1
            for extent in self.extents:
                strides.append(acc)
                acc *= extent
            self._strides = tuple(strides)
        return self._strides

    def flatten_index(self, coords: Tuple[int, ...]) -> int:
        return int(sum(c * s for c, s in zip(coords, self.strides)))

    # -- numpy conversion ----------------------------------------------------

    @classmethod
    def from_numpy(
        cls,
        name: str,
        array: np.ndarray,
        dtype: Optional[DataType] = None,
        memory_type: MemoryType = MemoryType.HEAP,
        is_external: bool = True,
    ) -> "Buffer":
        """Wrap a numpy array; numpy's last axis becomes dimension 0.

        Zero-copy for C-contiguous arrays already of the buffer's
        storage dtype; see :class:`Buffer` for when a copy is made.
        """
        from ..ir.types import Float, Int, UInt

        if dtype is None:
            kind = array.dtype.kind
            bits = array.dtype.itemsize * 8
            if kind == "f":
                dtype = Float(bits)
            elif kind == "i":
                dtype = Int(bits)
            elif kind == "u":
                dtype = UInt(bits)
            else:
                raise ValueError(f"unsupported numpy dtype {array.dtype}")
        extents = tuple(reversed(array.shape))
        return cls(
            name,
            dtype,
            extents,
            memory_type=memory_type,
            is_external=is_external,
            data=array,
        )

    def to_numpy(self) -> np.ndarray:
        """View as a numpy array (outermost dimension first)."""
        shape = tuple(reversed(self.extents))
        return self.data.reshape(shape)

    # -- element access ------------------------------------------------------

    def gather(self, indices: np.ndarray) -> np.ndarray:
        self.load_mask[indices] = True
        return self.data[indices]

    def scatter(self, indices: np.ndarray, values: np.ndarray) -> None:
        self.store_mask[indices] = True
        if self.dtype.code is TypeCode.BFLOAT:
            values = round_to_bfloat16(values)
        self.data[indices] = values

    # -- accounting ----------------------------------------------------------

    def load_footprint_bytes(self) -> int:
        if self._load_mask is None:
            return 0
        return int(self._load_mask.sum()) * self.dtype.bytes_per_lane()

    def store_footprint_bytes(self) -> int:
        if self._store_mask is None:
            return 0
        return int(self._store_mask.sum()) * self.dtype.bytes_per_lane()

    def reset_masks(self) -> None:
        self._load_mask = None
        self._store_mask = None

    def __repr__(self) -> str:
        return (
            f"Buffer({self.name!r}, {self.dtype}, extents={self.extents}, "
            f"{self.memory_type.value})"
        )


class StackedBuffer:
    """A batch of ``B`` logical buffers sharing one ``[B, size]`` array.

    The batch-axis kernels (:func:`repro.runtime.codegen
    .compile_batched_stmt`) index these as ``data[:, flat_index]`` —
    row ``b`` of ``data`` holds exactly what a per-request
    :class:`Buffer` of the same geometry would hold for request ``b``.
    ``extents``/``strides`` describe the *per-request* geometry (the
    batch axis is never addressed by the IR), so ``stride_env`` treats
    a stacked buffer like a plain one.
    """

    def __init__(
        self,
        name: str,
        dtype: DataType,
        extents: Tuple[int, ...],
        memory_type: MemoryType = MemoryType.HEAP,
        is_external: bool = False,
        batch: int = 1,
        data: Optional[np.ndarray] = None,
    ) -> None:
        if dtype.lanes != 1:
            raise ValueError("buffers hold scalar element types")
        self.name = name
        self.dtype = dtype
        self.extents = tuple(int(e) for e in extents)
        self.memory_type = memory_type
        self.is_external = is_external
        self.size = int(np.prod(self.extents)) if self.extents else 1
        self.batch = int(batch)
        if data is None:
            self.data = np.zeros((self.batch, self.size), dtype.to_numpy())
        else:
            if data.shape != (self.batch, self.size):
                raise ValueError(
                    f"stacked data shape {data.shape} !="
                    f" ({self.batch}, {self.size})"
                )
            self.data = data
        self._strides: Optional[Tuple[int, ...]] = None

    @classmethod
    def like(cls, buf: Buffer, batch: int) -> "StackedBuffer":
        """The ``[batch, ...]`` stacking of ``buf``'s geometry."""
        return cls(
            buf.name,
            buf.dtype,
            buf.extents,
            memory_type=buf.memory_type,
            is_external=buf.is_external,
            batch=batch,
        )

    @property
    def strides(self) -> Tuple[int, ...]:
        if self._strides is None:
            strides = []
            acc = 1
            for extent in self.extents:
                strides.append(acc)
                acc *= extent
            self._strides = tuple(strides)
        return self._strides

    def __repr__(self) -> str:
        return (
            f"StackedBuffer({self.name!r}, {self.dtype}, B={self.batch}, "
            f"extents={self.extents}, {self.memory_type.value})"
        )
