"""E-matching: finding all assignments of pattern variables to e-classes.

Two matchers live here:

* :class:`Matcher` — the original snapshot matcher (nodes grouped by
  head, recursive generators).  It remains the reference implementation
  and the API used by tests and interactive exploration; its
  ``match_anywhere`` deduplicates ``(eclass, bindings)`` pairs.
* :class:`CompiledQuery` — a whole rule query (term atoms, relation
  atoms, guards) lowered **once** into a flat sequence of
  scan/bind/compare/check instructions executed over a reusable register
  array.  Variables become register slots, repeated variables become
  compare instructions, and no per-binding dicts are copied while
  backtracking.  ``rules.RuleEngine`` drives these programs against the
  e-graph's persistent head index (full passes) or a per-round delta
  index (incremental passes).

Bindings map variable names to e-class ids.  Primitive arithmetic
(``*``, ``%``, ...) is evaluated over literal payloads, both in guards
and when instantiating action patterns.

Match a pattern against a small e-graph and fold a primitive over the
bound literals:

>>> from repro.eqsat import EGraph, I, Matcher, T, parse_one, parse_pattern
>>> from repro.eqsat.ematch import eval_value
>>> eg = EGraph()
>>> root = eg.add_term(T("Add", I(2), I(3)))
>>> pat = parse_pattern(parse_one("(Add ?a ?b)"))
>>> matcher = Matcher(eg)
>>> ((where, bindings),) = matcher.match_anywhere(pat, {})
>>> where == root
True
>>> eval_value(eg, parse_pattern(parse_one("(* ?a ?b)")), bindings)
6
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .egraph import EGraph
from .language import ENode, Head
from .pattern import (
    PRIMITIVE_OPS,
    PApp,
    PLit,
    Pattern,
    PVar,
    pattern_depth,
    pattern_var_depths,
    pattern_vars,
)

Bindings = Dict[str, int]


class MatchError(RuntimeError):
    pass


class Matcher:
    """Matches patterns against one e-graph snapshot."""

    def __init__(self, egraph: EGraph) -> None:
        self.egraph = egraph
        self.index = egraph.nodes_by_head()

    # -- structural matching -------------------------------------------------

    def match_in_class(
        self, pattern: Pattern, eclass_id: int, bindings: Bindings
    ) -> Iterator[Bindings]:
        """All ways ``pattern`` matches inside the given e-class."""
        egraph = self.egraph
        eclass_id = egraph.find(eclass_id)
        if isinstance(pattern, PVar):
            bound = bindings.get(pattern.name)
            if bound is not None:
                if egraph.find(bound) == eclass_id:
                    yield bindings
                return
            new = dict(bindings)
            new[pattern.name] = eclass_id
            yield new
            return
        if isinstance(pattern, PLit):
            value = egraph.literal_value(eclass_id)
            if value is not None and value == pattern.value:
                yield bindings
            return
        # PApp over an operator head
        for node in list(egraph.nodes_of(eclass_id)):
            if node.head != pattern.head or len(node.args) != len(pattern.args):
                continue
            yield from self._match_args(pattern.args, node.args, bindings, 0)

    def _match_args(self, patterns, arg_ids, bindings, i) -> Iterator[Bindings]:
        if i == len(patterns):
            yield bindings
            return
        for partial in self.match_in_class(patterns[i], arg_ids[i], bindings):
            yield from self._match_args(patterns, arg_ids, partial, i + 1)

    def match_anywhere(
        self, pattern: Pattern, bindings: Bindings
    ) -> Iterator[tuple]:
        """Yield unique ``(eclass_id, bindings)`` matches over the graph.

        A class holding several same-head nodes used to yield the full
        per-class match set once *per node*; duplicates are now folded.
        """
        seen = set()

        def emit(eclass_id: int, out: Bindings):
            key = (eclass_id, tuple(sorted(out.items())))
            if key in seen:
                return False
            seen.add(key)
            return True

        if isinstance(pattern, PVar) and pattern.name in bindings:
            root = self.egraph.find(bindings[pattern.name])
            yield root, bindings
            return
        if isinstance(pattern, PApp):
            for eclass_id, _node in self.index.get(pattern.head, ()):  # noqa: B007
                eclass_id = self.egraph.find(eclass_id)
                for out in self.match_in_class(pattern, eclass_id, bindings):
                    if emit(eclass_id, out):
                        yield eclass_id, out
            return
        # bare variable or literal: enumerate all classes
        for eclass_id in self.egraph.eclass_ids():
            if eclass_id not in self.egraph.classes:
                continue
            for out in self.match_in_class(pattern, eclass_id, bindings):
                root = self.egraph.find(eclass_id)
                if emit(root, out):
                    yield root, out

    # -- primitive evaluation ---------------------------------------------------

    def eval_value(self, pattern: Pattern, bindings: Bindings):
        """Evaluate a computational pattern to a Python value, or None."""
        return eval_value(self.egraph, pattern, bindings)


def eval_value(egraph: EGraph, pattern: Pattern, bindings):
    if isinstance(pattern, PLit):
        return pattern.value
    if isinstance(pattern, PVar):
        eclass = bindings.get(pattern.name)
        if eclass is None:
            return None
        return egraph.literal_value(eclass)
    if isinstance(pattern, PApp) and pattern.head in PRIMITIVE_OPS:
        values = [eval_value(egraph, a, bindings) for a in pattern.args]
        if any(v is None for v in values):
            return None
        return _apply_prim(pattern.head, values)
    return None


def _apply_prim(op: str, values):
    acc = values[0]
    for v in values[1:]:
        if op == "*":
            acc = acc * v
        elif op == "+":
            acc = acc + v
        elif op == "-":
            acc = acc - v
        elif op == "/":
            if isinstance(acc, int) and isinstance(v, int):
                if v == 0:
                    raise MatchError("division by zero in primitive")
                acc = acc // v
            else:
                acc = acc / v
        elif op == "%":
            if v == 0:
                raise MatchError("modulo by zero in primitive")
            acc = acc % v
        else:
            raise MatchError(f"unknown primitive {op!r}")
    return acc


def instantiate(egraph: EGraph, pattern: Pattern, bindings: Bindings) -> int:
    """Build (or look up) the e-class for a pattern under bindings.

    Primitive-op applications are folded into literals; structural heads
    become new e-nodes.
    """
    if isinstance(pattern, PVar):
        eclass = bindings.get(pattern.name)
        if eclass is None:
            raise MatchError(f"unbound variable {pattern.name!r} in action")
        return egraph.find(eclass)
    if isinstance(pattern, PLit):
        return egraph.add_literal(pattern.kind, pattern.value)
    if pattern.head in PRIMITIVE_OPS:
        value = eval_value(egraph, pattern, bindings)
        if value is None:
            raise MatchError(
                f"cannot evaluate primitive {pattern} — non-literal operand"
            )
        kind = "i64" if isinstance(value, int) else "f64"
        return egraph.add_literal(kind, value)
    args = tuple(instantiate(egraph, a, bindings) for a in pattern.args)
    return egraph.add_node(ENode(pattern.head, args))


# -- compiled pattern programs -------------------------------------------------
#
# A whole rule query compiles to a flat instruction tuple list.  Register
# allocation is single-assignment along any execution path, so
# backtracking needs no trail: a register is only read by instructions
# that run after its (unique) writer.

OP_SCAN = 0  # (op, out_class_reg, head, arity, arg_base) — root candidates
OP_BIND = 1  # (op, class_reg, head, arity, arg_base) — nodes inside a class
OP_COMPARE = 2  # (op, reg_a, reg_b)
OP_CHECK_LIT = 3  # (op, reg, value)
OP_SCAN_ALL = 4  # (op, out_class_reg) — every class (bare var/literal root)
OP_SCAN_REL = 5  # (op, name, arity, arg_base)
OP_GUARD = 6  # (op, atom, view, bind_name, bind_slot)
OP_SCAN_REL_BOUND = 7  # (op, name, arity, arg_base, src_slot, position)


class _RegView:
    """Mapping view over (slots, registers) for guard/primitive evaluation."""

    __slots__ = ("slots", "regs")

    def __init__(self, slots: Dict[str, int], regs: List[int]) -> None:
        self.slots = slots
        self.regs = regs

    def get(self, name: str, default=None):
        slot = self.slots.get(name)
        if slot is None:
            return default
        return self.regs[slot]

    def __contains__(self, name: str) -> bool:
        return name in self.slots


class CompiledQuery:
    """One rule query lowered to a register program.

    ``var_slots`` maps variable names to register indices; ``key_slots``
    is the ordered slot list used to build canonical dedup keys.
    ``delta_safe`` reports whether restricting the *first* scan to the
    dirty closure is exact, and ``depth`` is the closure level that scan
    must reach: new material sits at most ``depth`` structural levels
    below any match root (see ``rules.RuleEngine``).
    """

    __slots__ = (
        "instructions",
        "n_regs",
        "var_slots",
        "key_slots",
        "delta_safe",
        "depth",
    )

    def __init__(
        self, instructions, n_regs, var_slots, delta_safe, depth
    ) -> None:
        self.instructions = tuple(instructions)
        self.n_regs = n_regs
        self.var_slots = dict(var_slots)
        self.key_slots = tuple(sorted(set(var_slots.values())))
        self.delta_safe = delta_safe
        self.depth = depth


def compile_query(atoms: Sequence) -> CompiledQuery:
    """Lower a query (a sequence of atoms, see :mod:`.rules`) once."""
    from .rules import GuardAtom, RelAtom, TermAtom  # cycle-free at runtime

    instrs: List[tuple] = []
    slots: Dict[str, int] = {}
    n_regs = 0

    def alloc(count: int = 1) -> int:
        nonlocal n_regs
        base = n_regs
        n_regs += count
        return base

    def compile_subpattern(pattern: Pattern, reg: int) -> None:
        if isinstance(pattern, PVar):
            slot = slots.get(pattern.name)
            if slot is None:
                slots[pattern.name] = reg
            elif slot != reg:
                instrs.append((OP_COMPARE, slot, reg))
            return
        if isinstance(pattern, PLit):
            instrs.append((OP_CHECK_LIT, reg, pattern.value))
            return
        arity = len(pattern.args)
        base = alloc(arity)
        instrs.append((OP_BIND, reg, pattern.head, arity, base))
        for j, arg in enumerate(pattern.args):
            compile_subpattern(arg, base + j)

    def bind_root_var(var: Optional[str], root_reg: int) -> None:
        if var is None:
            return
        slot = slots.get(var)
        if slot is None:
            slots[var] = root_reg
        elif slot != root_reg:
            instrs.append((OP_COMPARE, slot, root_reg))

    # -- delta-safety analysis ----------------------------------------------
    # Restricting the first scan to the dirty closure is exact when any
    # new match must bind a touched class *structurally under the root*:
    #   * the first atom is a structural TermAtom (its match tree hangs
    #     off the root, and the closure contains all parents of touched
    #     classes);
    #   * every later TermAtom matches inside a class that is itself
    #     bound at a *structural* position (new nodes there dirty that
    #     class, whose root is a parent-ancestor);
    #   * every RelAtom carries only variable/literal args and shares a
    #     structurally-bound variable, so a new row dirties a class in
    #     the root's parent-reachable subtree.
    # Variables that enter a match only through a relation row or a
    # guard binding are NOT structurally connected — their classes have
    # no parent edge leading to the root, so anchoring a later atom on
    # them would let new material escape the dirty closure.  Anything
    # of that shape (and second unbound scans, relation-first rules,
    # ...) falls back to full matching every round.
    first = atoms[0] if atoms else None
    delta_safe = (
        isinstance(first, TermAtom)
        and isinstance(first.pattern, PApp)
        and first.pattern.head not in PRIMITIVE_OPS
    )
    if delta_safe:
        structural_vars = pattern_vars(first.pattern)
        if first.var is not None:
            structural_vars.add(first.var)
        for atom in atoms[1:]:
            if isinstance(atom, TermAtom):
                if atom.var is None or atom.var not in structural_vars:
                    delta_safe = False
                    break
                # its pattern hangs off a structural class, so its
                # variables are structural too
                structural_vars |= pattern_vars(atom.pattern)
            elif isinstance(atom, RelAtom):
                arg_vars = {
                    a.name for a in atom.args if isinstance(a, PVar)
                }
                if not all(
                    isinstance(a, (PVar, PLit)) for a in atom.args
                ) or not (arg_vars & structural_vars):
                    delta_safe = False
                    break
                # row-bound variables are deliberately NOT added to
                # structural_vars: their classes are only reachable
                # through the row, not through parent edges

    # -- instruction emission ------------------------------------------------
    for atom in atoms:
        if isinstance(atom, TermAtom):
            pattern = atom.pattern
            if isinstance(pattern, PApp):
                bound_slot = (
                    slots.get(atom.var) if atom.var is not None else None
                )
                if bound_slot is not None:
                    # match inside the already-bound class
                    arity = len(pattern.args)
                    base = alloc(arity)
                    instrs.append(
                        (OP_BIND, bound_slot, pattern.head, arity, base)
                    )
                    for j, arg in enumerate(pattern.args):
                        compile_subpattern(arg, base + j)
                else:
                    root_reg = alloc()
                    arity = len(pattern.args)
                    base = alloc(arity)
                    instrs.append(
                        (OP_SCAN, root_reg, pattern.head, arity, base)
                    )
                    for j, arg in enumerate(pattern.args):
                        compile_subpattern(arg, base + j)
                    bind_root_var(atom.var, root_reg)
            elif isinstance(pattern, PVar):
                slot = slots.get(pattern.name)
                if slot is None:
                    slot = alloc()
                    instrs.append((OP_SCAN_ALL, slot))
                    slots[pattern.name] = slot
                bind_root_var(atom.var, slot)
            else:  # PLit root
                root_reg = alloc()
                instrs.append((OP_SCAN_ALL, root_reg))
                instrs.append((OP_CHECK_LIT, root_reg, pattern.value))
                bind_root_var(atom.var, root_reg)
        elif isinstance(atom, RelAtom):
            arity = len(atom.args)
            base = alloc(arity)
            # join on an already-bound variable argument when possible:
            # rows come from the reverse class->rows index instead of a
            # scan over the whole relation
            bound_pos = None
            for j, arg in enumerate(atom.args):
                if isinstance(arg, PVar) and arg.name in slots:
                    bound_pos = (slots[arg.name], j)
                    break
            if bound_pos is not None:
                instrs.append(
                    (
                        OP_SCAN_REL_BOUND,
                        atom.name,
                        arity,
                        base,
                        bound_pos[0],
                        bound_pos[1],
                    )
                )
            else:
                instrs.append((OP_SCAN_REL, atom.name, arity, base))
            for j, arg in enumerate(atom.args):
                compile_subpattern(arg, base + j)
        elif isinstance(atom, GuardAtom):
            # A (= x <expr>) guard with exactly one unbound top-level
            # variable binds it to the computed literal; reserve its slot.
            bind_name = bind_slot = None
            if atom.op == "=":
                unbound = [
                    a
                    for a in atom.args
                    if isinstance(a, PVar) and a.name not in slots
                ]
                if len(unbound) == 1:
                    bind_name = unbound[0].name
                    bind_slot = alloc()
            view = dict(slots)  # boundness snapshot before the guard
            instrs.append((OP_GUARD, atom, view, bind_name, bind_slot))
            if bind_name is not None:
                slots[bind_name] = bind_slot
        else:
            raise MatchError(f"unknown atom {atom!r}")

    # closure depth: the maximum parent-distance from any structural
    # position of the query (where new material can appear) up to the
    # match root.  Variables carry their depth so positions inside later
    # class-bound term atoms and relation rows are anchored correctly.
    depth = 0
    var_depth: Dict[str, int] = {}
    for atom in atoms:
        if isinstance(atom, TermAtom):
            base = 0
            if atom.var is not None and atom.var in var_depth:
                base = var_depth[atom.var]
            else:
                if atom.var is not None:
                    var_depth[atom.var] = 0
            depth = max(depth, base + pattern_depth(atom.pattern))
            pattern_var_depths(atom.pattern, base, var_depth)
        elif isinstance(atom, RelAtom):
            for arg in atom.args:
                if isinstance(arg, PVar):
                    depth = max(depth, var_depth.get(arg.name, 0))
    return CompiledQuery(instrs, n_regs, slots, delta_safe, max(depth, 1))


import operator as _operator

_COMPARISON_FNS = {
    ">": _operator.gt,
    "<": _operator.lt,
    ">=": _operator.ge,
    "<=": _operator.le,
    "!=": _operator.ne,
}


def _simple_comparison(atom, view_slots):
    """Specialize a pure comparison guard over bound vars/literals.

    Returns ``(compare, a_spec, b_spec)`` where each spec is ``("lit",
    value)`` or ``("var", slot)``, or None when the guard needs the
    general evaluator (primitive arithmetic, ``=`` binding, ...).
    """
    compare = _COMPARISON_FNS.get(atom.op)
    if compare is None or len(atom.args) != 2:
        return None
    specs = []
    for arg in atom.args:
        if isinstance(arg, PLit):
            specs.append(("lit", arg.value))
        elif isinstance(arg, PVar) and arg.name in view_slots:
            specs.append(("var", view_slots[arg.name]))
        else:
            return None
    return compare, specs[0], specs[1]


def _exec_guard(egraph: EGraph, ins, regs: List[int]) -> bool:
    """Execute a guard instruction; mirrors the reference semantics."""
    _, atom, view_slots, bind_name, bind_slot = ins
    view = _RegView(view_slots, regs)
    return _guard_holds(egraph, atom, view, regs, bind_name, bind_slot)


def _guard_holds(
    egraph: EGraph, atom, view: "_RegView", regs, bind_name, bind_slot
) -> bool:
    if atom.op == "=":
        lhs, rhs = atom.args
        lhs_value = eval_value(egraph, lhs, view)
        rhs_value = eval_value(egraph, rhs, view)
        if lhs_value is not None and rhs_value is not None:
            return lhs_value == rhs_value
        for unbound, value in ((lhs, rhs_value), (rhs, lhs_value)):
            if (
                isinstance(unbound, PVar)
                and unbound.name not in view
                and value is not None
            ):
                kind = "i64" if isinstance(value, int) else "f64"
                regs[bind_slot] = egraph.add_literal(kind, value)
                return True
        if isinstance(lhs, PVar) and isinstance(rhs, PVar):
            a, b = view.get(lhs.name), view.get(rhs.name)
            return (
                a is not None
                and b is not None
                and egraph.find(a) == egraph.find(b)
            )
        return False
    values = [eval_value(egraph, a, view) for a in atom.args]
    if any(v is None for v in values):
        return False
    a, b = values
    return _COMPARISON_FNS[atom.op](a, b)


#: candidate source for the first scan: head -> iterable of (class, node)
ScanSource = Callable[[Head], Iterator[Tuple[int, ENode]]]


class BoundExecutor:
    """A query program pre-bound to one e-graph.

    Each instruction becomes one closure chained to the next, built once;
    running a pass only swaps the root candidate source and the match
    callback.  The register array is reused across runs (matching is
    single-threaded and non-reentrant per executor).
    """

    __slots__ = ("program", "regs", "_entry", "_cell")

    def __init__(self, program: "CompiledQuery", egraph: EGraph) -> None:
        self.program = program
        regs = self.regs = [0] * max(program.n_regs, 1)
        find = egraph.find
        classes = egraph.classes
        literal_value = egraph.literal_value
        #: [root_source, on_match] swapped per run
        cell = self._cell = [None, None]

        def tail():
            cell[1](regs)

        chain = tail
        for ip in range(len(program.instructions) - 1, -1, -1):
            ins = program.instructions[ip]
            op = ins[0]
            nxt = chain
            if op == OP_COMPARE:
                _, ra, rb = ins

                def chain(ra=ra, rb=rb, nxt=nxt):
                    if find(regs[ra]) == find(regs[rb]):
                        nxt()

            elif op == OP_CHECK_LIT:
                _, reg, expect = ins

                def chain(reg=reg, expect=expect, nxt=nxt):
                    value = literal_value(regs[reg])
                    if value is not None and value == expect:
                        nxt()

            elif op == OP_GUARD:
                _, atom, view_slots, bind_name, bind_slot = ins
                spec = _simple_comparison(atom, view_slots)
                if spec is not None:
                    compare, a_spec, b_spec = spec

                    def load(arg_spec):
                        kind, payload = arg_spec
                        if kind == "lit":
                            return lambda: payload
                        return lambda slot=payload: literal_value(
                            regs[slot]
                        )

                    def chain(
                        compare=compare,
                        load_a=load(a_spec),
                        load_b=load(b_spec),
                        nxt=nxt,
                    ):
                        a = load_a()
                        if a is None:
                            return
                        b = load_b()
                        if b is None:
                            return
                        if compare(a, b):
                            nxt()

                else:
                    view = _RegView(view_slots, regs)

                    def chain(
                        atom=atom,
                        view=view,
                        bind_name=bind_name,
                        bind_slot=bind_slot,
                        nxt=nxt,
                    ):
                        if _guard_holds(
                            egraph, atom, view, regs, bind_name, bind_slot
                        ):
                            nxt()

            elif op == OP_BIND:
                _, creg, head, arity, base = ins

                def chain(
                    creg=creg,
                    head=head,
                    arity=arity,
                    base=base,
                    end=base + arity,
                    nxt=nxt,
                ):
                    eclass = classes.get(find(regs[creg]))
                    if eclass is None:
                        return
                    for node in eclass.nodes:
                        args = node.args
                        if node.head == head and len(args) == arity:
                            regs[base:end] = args
                            nxt()

            elif op == OP_SCAN:
                _, out, head, arity, base = ins
                if ip == 0:

                    def chain(
                        out=out,
                        head=head,
                        arity=arity,
                        base=base,
                        end=base + arity,
                        nxt=nxt,
                    ):
                        for cid, node in cell[0](head):
                            args = node.args
                            if len(args) != arity:
                                continue
                            regs[out] = cid
                            regs[base:end] = args
                            nxt()

                else:
                    entries_of = egraph.head_entries

                    def chain(
                        out=out,
                        head=head,
                        arity=arity,
                        base=base,
                        end=base + arity,
                        nxt=nxt,
                    ):
                        for node, owner in entries_of(head).items():
                            args = node.args
                            if len(args) != arity:
                                continue
                            regs[out] = owner
                            regs[base:end] = args
                            nxt()

            elif op == OP_SCAN_ALL:
                _, out = ins

                def chain(out=out, nxt=nxt):
                    for cid in list(classes.keys()):
                        regs[out] = cid
                        nxt()

            elif op == OP_SCAN_REL:
                _, name, arity, base = ins
                facts_of = egraph.facts

                def chain(name=name, arity=arity, base=base, nxt=nxt):
                    for row in facts_of(name):
                        if len(row) != arity:
                            continue
                        for j in range(arity):
                            value = row[j]
                            if not isinstance(value, int):
                                raise MatchError(
                                    f"relation row holds non-eclass value"
                                    f" {value!r}"
                                )
                            regs[base + j] = value
                        nxt()

            elif op == OP_SCAN_REL_BOUND:
                _, name, arity, base, src_slot, pos = ins
                rows_mentioning = egraph.rows_mentioning

                def chain(
                    name=name,
                    arity=arity,
                    base=base,
                    src_slot=src_slot,
                    pos=pos,
                    nxt=nxt,
                ):
                    target = find(regs[src_slot])
                    for rel_name, row in rows_mentioning(target):
                        if rel_name != name or len(row) != arity:
                            continue
                        value = row[pos]
                        if not isinstance(value, int) or find(value) != target:
                            continue
                        for j in range(arity):
                            value = row[j]
                            if not isinstance(value, int):
                                raise MatchError(
                                    f"relation row holds non-eclass value"
                                    f" {value!r}"
                                )
                            regs[base + j] = value
                        nxt()

            else:
                raise MatchError(f"unknown opcode {op!r}")
        self._entry = chain

    def run(self, root_source: ScanSource, on_match) -> None:
        """One pass: draw root candidates from ``root_source``, call
        ``on_match`` with the live register array per match."""
        self._cell[0] = root_source
        self._cell[1] = on_match
        self._entry()


def full_scan_source(egraph: EGraph) -> ScanSource:
    """Root candidates from the persistent head index (a full pass)."""

    def source(head: Head):
        # owners may be stale; consumers canonicalize through find()
        for node, owner in egraph.head_entries(head).items():
            yield owner, node

    return source


class DeltaSource:
    """Root candidates restricted to a dirty closure (a delta pass).

    ``closure`` maps class ids to their parent-distance from the nearest
    touched class.  Entries carry that level so each rule can further
    restrict candidates to its own structural depth (a depth-1 rule only
    ever gains matches rooted at a touched class or its direct parents).
    ``min_level`` lets engines skip rules whose root head has no
    candidates within reach without entering the query program.
    """

    __slots__ = ("index", "min_levels", "_egraph", "_closure", "_built")

    def __init__(self, egraph: EGraph, closure: Dict[int, int]) -> None:
        # first pass: head presence/levels only — candidate lists are
        # built lazily, and only for the heads rules actually scan
        min_levels: Dict[Head, int] = {}
        classes = egraph.classes
        for cid, level in closure.items():
            eclass = classes.get(cid)
            if eclass is None:
                continue
            for node in eclass.nodes:
                head = node.head
                current = min_levels.get(head)
                if current is None or level < current:
                    min_levels[head] = level
        self.index: Dict[Head, List[Tuple[int, ENode, int]]] = {}
        self.min_levels = min_levels
        self._egraph = egraph
        self._closure = closure
        self._built: set = set()

    def prepare(self, heads) -> None:
        """Build candidate lists for the given heads in one pass."""
        missing = {
            h for h in heads if h not in self._built and h in self.min_levels
        }
        if not missing:
            return
        classes = self._egraph.classes
        index = self.index
        for cid, level in self._closure.items():
            eclass = classes.get(cid)
            if eclass is None:
                continue
            for node in eclass.nodes:
                if node.head in missing:
                    index.setdefault(node.head, []).append(
                        (cid, node, level)
                    )
        self._built |= missing

    def rule_plan(self, by_head, programs) -> List[int]:
        """Rule indices that can have new matches against this delta:
        their root head is present within their closure depth."""
        plan: List[int] = []
        min_levels = self.min_levels
        for head, indices in by_head.items():
            level = min_levels.get(head)
            if level is None:
                continue
            for idx in indices:
                if programs[idx].depth >= level:
                    plan.append(idx)
        return plan

    def min_level(self, head: Head) -> Optional[int]:
        """Smallest closure level among candidates with this head."""
        return self.min_levels.get(head)

    def at_depth(self, depth: int) -> "ScanSource":
        """A scan source over candidates within ``depth`` levels."""

        def source(head: Head):
            if head not in self._built:
                self.prepare((head,))
            for cid, node, level in self.index.get(head, ()):
                if level <= depth:
                    yield cid, node

        return source


def delta_scan_source(egraph: EGraph, closure) -> DeltaSource:
    return DeltaSource(egraph, closure)


def run_query(
    egraph: EGraph,
    query: CompiledQuery,
    root_source: Optional[ScanSource] = None,
    on_match: Optional[Callable[[List[int]], None]] = None,
) -> Optional[List[Bindings]]:
    """Execute a compiled query; the first OP_SCAN draws candidates from
    ``root_source`` (later scans always use the full index).

    A convenience wrapper over :class:`BoundExecutor` for one-shot
    callers (``find_matches``, tests); engines keep their executors.
    With ``on_match`` given it is called with the live register array
    per match (read, don't keep); otherwise a list of bindings dicts is
    returned.
    """
    if root_source is None:
        root_source = full_scan_source(egraph)
    results: Optional[List[Bindings]] = None
    if on_match is None:
        results = []
        find = egraph.find
        var_slots = query.var_slots

        def on_match(regs):  # noqa: F811 — default collector
            results.append(
                {name: find(regs[s]) for name, s in var_slots.items()}
            )

    BoundExecutor(query, egraph).run(root_source, on_match)
    return results
