"""E-matching: finding all assignments of pattern variables to e-classes.

The matcher works against a snapshot index of the e-graph (nodes grouped
by head).  Bindings map variable names to e-class ids.  Primitive
arithmetic (``*``, ``%``, ...) is evaluated over literal payloads, both in
guards and when instantiating action patterns.

Match a pattern against a small e-graph and fold a primitive over the
bound literals:

>>> from repro.eqsat import EGraph, I, Matcher, T, parse_one, parse_pattern
>>> from repro.eqsat.ematch import eval_value
>>> eg = EGraph()
>>> root = eg.add_term(T("Add", I(2), I(3)))
>>> pat = parse_pattern(parse_one("(Add ?a ?b)"))
>>> matcher = Matcher(eg)
>>> ((where, bindings),) = matcher.match_anywhere(pat, {})
>>> where == root
True
>>> eval_value(eg, parse_pattern(parse_one("(* ?a ?b)")), bindings)
6
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from .egraph import EGraph
from .language import ENode
from .pattern import PRIMITIVE_OPS, PApp, PLit, Pattern, PVar

Bindings = Dict[str, int]


class MatchError(RuntimeError):
    pass


class Matcher:
    """Matches patterns against one e-graph snapshot."""

    def __init__(self, egraph: EGraph) -> None:
        self.egraph = egraph
        self.index = egraph.nodes_by_head()

    # -- structural matching -------------------------------------------------

    def match_in_class(
        self, pattern: Pattern, eclass_id: int, bindings: Bindings
    ) -> Iterator[Bindings]:
        """All ways ``pattern`` matches inside the given e-class."""
        egraph = self.egraph
        eclass_id = egraph.find(eclass_id)
        if isinstance(pattern, PVar):
            bound = bindings.get(pattern.name)
            if bound is not None:
                if egraph.find(bound) == eclass_id:
                    yield bindings
                return
            new = dict(bindings)
            new[pattern.name] = eclass_id
            yield new
            return
        if isinstance(pattern, PLit):
            value = egraph.literal_value(eclass_id)
            if value is not None and value == pattern.value:
                yield bindings
            return
        # PApp over an operator head
        for node in list(egraph.nodes_of(eclass_id)):
            if node.head != pattern.head or len(node.args) != len(pattern.args):
                continue
            yield from self._match_args(pattern.args, node.args, bindings, 0)

    def _match_args(self, patterns, arg_ids, bindings, i) -> Iterator[Bindings]:
        if i == len(patterns):
            yield bindings
            return
        for partial in self.match_in_class(patterns[i], arg_ids[i], bindings):
            yield from self._match_args(patterns, arg_ids, partial, i + 1)

    def match_anywhere(
        self, pattern: Pattern, bindings: Bindings
    ) -> Iterator[tuple]:
        """Yield ``(eclass_id, bindings)`` for matches anywhere in the graph."""
        if isinstance(pattern, PVar) and pattern.name in bindings:
            root = self.egraph.find(bindings[pattern.name])
            yield root, bindings
            return
        if isinstance(pattern, PApp):
            for eclass_id, _node in self.index.get(pattern.head, ()):  # noqa: B007
                eclass_id = self.egraph.find(eclass_id)
                for out in self.match_in_class(pattern, eclass_id, bindings):
                    yield eclass_id, out
            return
        # bare variable or literal: enumerate all classes
        for eclass_id in self.egraph.eclass_ids():
            if eclass_id not in self.egraph.classes:
                continue
            for out in self.match_in_class(pattern, eclass_id, bindings):
                yield self.egraph.find(eclass_id), out

    # -- primitive evaluation ---------------------------------------------------

    def eval_value(self, pattern: Pattern, bindings: Bindings):
        """Evaluate a computational pattern to a Python value, or None."""
        return eval_value(self.egraph, pattern, bindings)


def eval_value(egraph: EGraph, pattern: Pattern, bindings: Bindings):
    if isinstance(pattern, PLit):
        return pattern.value
    if isinstance(pattern, PVar):
        eclass = bindings.get(pattern.name)
        if eclass is None:
            return None
        return egraph.literal_value(eclass)
    if isinstance(pattern, PApp) and pattern.head in PRIMITIVE_OPS:
        values = [eval_value(egraph, a, bindings) for a in pattern.args]
        if any(v is None for v in values):
            return None
        return _apply_prim(pattern.head, values)
    return None


def _apply_prim(op: str, values):
    acc = values[0]
    for v in values[1:]:
        if op == "*":
            acc = acc * v
        elif op == "+":
            acc = acc + v
        elif op == "-":
            acc = acc - v
        elif op == "/":
            if isinstance(acc, int) and isinstance(v, int):
                if v == 0:
                    raise MatchError("division by zero in primitive")
                acc = acc // v
            else:
                acc = acc / v
        elif op == "%":
            if v == 0:
                raise MatchError("modulo by zero in primitive")
            acc = acc % v
        else:
            raise MatchError(f"unknown primitive {op!r}")
    return acc


def instantiate(egraph: EGraph, pattern: Pattern, bindings: Bindings) -> int:
    """Build (or look up) the e-class for a pattern under bindings.

    Primitive-op applications are folded into literals; structural heads
    become new e-nodes.
    """
    if isinstance(pattern, PVar):
        eclass = bindings.get(pattern.name)
        if eclass is None:
            raise MatchError(f"unbound variable {pattern.name!r} in action")
        return egraph.find(eclass)
    if isinstance(pattern, PLit):
        return egraph.add_literal(pattern.kind, pattern.value)
    if pattern.head in PRIMITIVE_OPS:
        value = eval_value(egraph, pattern, bindings)
        if value is None:
            raise MatchError(
                f"cannot evaluate primitive {pattern} — non-literal operand"
            )
        kind = "i64" if isinstance(value, int) else "f64"
        return egraph.add_literal(kind, value)
    args = tuple(instantiate(egraph, a, bindings) for a in pattern.args)
    return egraph.add_node(ENode(pattern.head, args))
