"""Ground terms and e-nodes of the EqSat term language.

Operators are plain string heads (``"Add"``, ``"Broadcast"``, ...).
Literals carry their payload in the head as a tuple: ``("i64", 5)``,
``("f64", 0.5)``, ``("str", "A")`` — so two equal literals always
hashcons to the same e-class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Tuple, Union

Head = Union[str, Tuple[str, object]]


@dataclass(frozen=True)
class Term:
    """An immutable ground term: ``head(args...)``."""

    head: Head
    args: Tuple["Term", ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    def is_literal(self) -> bool:
        return isinstance(self.head, tuple)

    @property
    def payload(self) -> object:
        if not self.is_literal():
            raise ValueError(f"{self.head} is not a literal")
        return self.head[1]

    def __str__(self) -> str:
        if self.is_literal():
            kind, value = self.head
            return repr(value) if kind == "str" else str(value)
        if not self.args:
            return f"({self.head})"
        parts = " ".join(str(a) for a in self.args)
        return f"({self.head} {parts})"


def I(value: int) -> Term:
    """An i64 literal term."""
    return Term(("i64", int(value)))


def F(value: float) -> Term:
    """An f64 literal term."""
    return Term(("f64", float(value)))


def Sym(name: str) -> Term:
    """A string/symbol literal term (buffer names etc.)."""
    return Term(("str", str(name)))


def T(head: str, *args: Term) -> Term:
    """Operator term constructor."""
    return Term(head, tuple(args))


class ENode(NamedTuple):
    """A node inside the e-graph: head plus child e-class ids."""

    head: Head
    args: Tuple[int, ...]

    def canonicalize(self, find) -> "ENode":
        return ENode(self.head, tuple(find(a) for a in self.args))

    def __str__(self) -> str:
        if isinstance(self.head, tuple):
            return str(self.head[1])
        if not self.args:
            return f"({self.head})"
        return f"({self.head} {' '.join(f'${a}' for a in self.args)})"
