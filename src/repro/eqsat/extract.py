"""Cost-based extraction of the best term from an e-graph.

The paper's cost model is AST size (§III-D.3): the schedule already pins
*where* computation happens, so instruction selection is hit-or-miss and a
small-is-better cost suffices.  ``ExprVar`` (a materialized temporary) is
special: its subtree is computed once outside the hot loop, so its
children contribute only epsilon — enough to keep costs strictly
monotonic (and extraction cycle-free) without penalizing swizzles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .egraph import EGraph
from .language import ENode, Term


@dataclass
class CostModel:
    """Per-head base costs; default is 1 per node (AST size)."""

    base_costs: Dict[str, float] = field(default_factory=dict)
    default_cost: float = 1.0
    #: heads whose children are charged at this discounted rate
    hoisted_heads: Dict[str, float] = field(
        default_factory=lambda: {"ExprVar": 1e-3}
    )

    def node_cost(self, node: ENode, child_costs) -> float:
        if isinstance(node.head, tuple):
            return 0.5  # literals are cheap
        base = self.base_costs.get(node.head, self.default_cost)
        scale = self.hoisted_heads.get(node.head, 1.0)
        return base + scale * sum(child_costs)


class ExtractionError(RuntimeError):
    pass


def compute_costs(
    egraph: EGraph, cost_model: Optional[CostModel] = None
) -> Dict[int, Tuple[float, ENode]]:
    """Fixpoint computation of the cheapest (cost, node) per e-class."""
    cost_model = cost_model or CostModel()
    best: Dict[int, Tuple[float, ENode]] = {}
    changed = True
    while changed:
        changed = False
        for eclass_id in list(egraph.classes.keys()):
            for node in egraph.nodes_of(eclass_id):
                child_entries = [best.get(egraph.find(a)) for a in node.args]
                if any(c is None for c in child_entries):
                    continue
                cost = cost_model.node_cost(
                    node, [c[0] for c in child_entries]
                )
                current = best.get(eclass_id)
                if current is None or cost < current[0] - 1e-12:
                    best[eclass_id] = (cost, node)
                    changed = True
    return best


def extract_best(
    egraph: EGraph,
    root: int,
    cost_model: Optional[CostModel] = None,
    costs: Optional[Dict[int, Tuple[float, ENode]]] = None,
) -> Term:
    """The cheapest term represented by ``root``'s e-class."""
    if costs is None:
        costs = compute_costs(egraph, cost_model)
    root = egraph.find(root)

    def build(eclass_id: int, depth: int) -> Term:
        if depth > 10_000:
            raise ExtractionError("extraction recursion limit — cyclic costs?")
        entry = costs.get(egraph.find(eclass_id))
        if entry is None:
            raise ExtractionError(
                f"e-class {eclass_id} has no extractable term"
            )
        _, node = entry
        return Term(node.head, tuple(build(a, depth + 1) for a in node.args))

    return build(root, 0)


def extraction_cost(
    egraph: EGraph, root: int, cost_model: Optional[CostModel] = None
) -> float:
    costs = compute_costs(egraph, cost_model)
    entry = costs.get(egraph.find(root))
    if entry is None:
        raise ExtractionError(f"e-class {root} has no extractable term")
    return entry[0]
