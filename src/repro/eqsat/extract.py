"""Cost-based extraction of the best term from an e-graph.

The paper's cost model is AST size (§III-D.3): the schedule already pins
*where* computation happens, so instruction selection is hit-or-miss and a
small-is-better cost suffices.  ``ExprVar`` (a materialized temporary) is
special: its subtree is computed once outside the hot loop, so its
children contribute only epsilon — enough to keep costs strictly
monotonic (and extraction cycle-free) without penalizing swizzles.

``compute_costs`` runs the fixpoint sparsely: a sweep revisits only
classes whose children's best entry changed in the previous sweep
(propagated through the parent lists), instead of rescanning every node
of every class each sweep — the quadratic behaviour of the naive loop on
saturated graphs.  Results are memoized on the e-graph, keyed by cost
model and invalidated by any version change, so repeated extractions of
a saturated graph pay the fixpoint once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from .egraph import EGraph
from .language import ENode, Term


@dataclass
class CostModel:
    """Per-head base costs; default is 1 per node (AST size)."""

    base_costs: Dict[str, float] = field(default_factory=dict)
    default_cost: float = 1.0
    #: heads whose children are charged at this discounted rate
    hoisted_heads: Dict[str, float] = field(
        default_factory=lambda: {"ExprVar": 1e-3}
    )

    def node_cost(self, node: ENode, child_costs) -> float:
        if isinstance(node.head, tuple):
            return 0.5  # literals are cheap
        base = self.base_costs.get(node.head, self.default_cost)
        scale = self.hoisted_heads.get(node.head, 1.0)
        return base + scale * sum(child_costs)

    def cache_key(self) -> tuple:
        """Hashable fingerprint for the per-e-graph cost memo."""
        return (
            type(self),
            tuple(sorted(self.base_costs.items())),
            self.default_cost,
            tuple(sorted(self.hoisted_heads.items())),
        )


class ExtractionError(RuntimeError):
    pass


def compute_costs(
    egraph: EGraph, cost_model: Optional[CostModel] = None
) -> Dict[int, Tuple[float, ENode]]:
    """Fixpoint computation of the cheapest (cost, node) per e-class."""
    cost_model = cost_model or CostModel()
    key = cost_model.cache_key()
    cached = egraph._cost_cache
    if (
        cached is not None
        and cached[0] == key
        and cached[1] == egraph.version
    ):
        return cached[2]
    best: Dict[int, Tuple[float, ENode]] = {}
    find = egraph.find
    classes = egraph.classes
    # sweep order is class-creation order, matching the naive loop
    order = {cid: i for i, cid in enumerate(classes.keys())}
    pending: Set[int] = set(classes.keys())
    while pending:
        changed: Set[int] = set()
        for eclass_id in sorted(pending, key=order.__getitem__):
            eclass = classes.get(eclass_id)
            if eclass is None:
                continue
            for node in eclass.nodes:
                child_entries = [best.get(find(a)) for a in node.args]
                if any(c is None for c in child_entries):
                    continue
                cost = cost_model.node_cost(
                    node, [c[0] for c in child_entries]
                )
                current = best.get(eclass_id)
                if current is None or cost < current[0] - 1e-12:
                    best[eclass_id] = (cost, node)
                    changed.add(eclass_id)
        # revisit only the parents of classes whose best entry changed
        pending = set()
        for eclass_id in changed:
            eclass = classes.get(eclass_id)
            if eclass is None:
                continue
            for _node, owner in eclass.parents:
                owner = find(owner)
                if owner in classes:
                    pending.add(owner)
    egraph._cost_cache = (key, egraph.version, best)
    return best


def extract_best(
    egraph: EGraph,
    root: int,
    cost_model: Optional[CostModel] = None,
    costs: Optional[Dict[int, Tuple[float, ENode]]] = None,
) -> Term:
    """The cheapest term represented by ``root``'s e-class."""
    if costs is None:
        costs = compute_costs(egraph, cost_model)
    root = egraph.find(root)

    def build(eclass_id: int, depth: int) -> Term:
        if depth > 10_000:
            raise ExtractionError("extraction recursion limit — cyclic costs?")
        entry = costs.get(egraph.find(eclass_id))
        if entry is None:
            raise ExtractionError(
                f"e-class {eclass_id} has no extractable term"
            )
        _, node = entry
        return Term(node.head, tuple(build(a, depth + 1) for a in node.args))

    return build(root, 0)


def extraction_cost(
    egraph: EGraph, root: int, cost_model: Optional[CostModel] = None
) -> float:
    costs = compute_costs(egraph, cost_model)
    entry = costs.get(egraph.find(root))
    if entry is None:
        raise ExtractionError(f"e-class {root} has no extractable term")
    return entry[0]
