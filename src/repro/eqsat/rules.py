"""Rules: egglog-style rewrites, queries, and actions.

A rule has a *query* (a conjunction of atoms) and *actions*.  Atoms:

* ``TermAtom(var, pattern)`` — ``(= var (Op ...))``; matches the pattern
  anywhere in the e-graph and binds ``var`` to the matched class.
* ``RelAtom(name, args)`` — ``(rel a b)``; matches stored relation rows.
* ``GuardAtom(op, args)`` — primitive predicates over literal payloads,
  e.g. ``(> l2 l1)`` or ``(= 0 (% l2 l1))``.  A guard ``(= x <expr>)``
  with ``x`` unbound *binds* ``x`` to the computed literal (egglog-style
  primitive evaluation).

Actions: ``LetAction`` (bind a constructed term), ``UnionAction``,
``FactAction`` (assert a relation row).

Rules can be written programmatically or parsed from egglog-ish text via
:func:`parse_program`.

Saturation runs on :class:`RuleEngine`: each rule's query is compiled
once to a flat register program (:mod:`.ematch`), matched either against
the e-graph's persistent head index (full pass) or against only the
classes dirtied since the rule's last pass (delta pass, exact for rules
that pass the static safety analysis).  Matches are deduplicated on
canonical variable bindings before application, and a
:class:`BackoffScheduler` temporarily banishes rules whose match counts
explode (egg's backoff design).  The engine is persistent: keeping one
engine across calls (as ``run_phased`` does) carries the watermarks and
dedup tables forward, so later passes only pay for what changed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .egraph import EGraph
from .ematch import (
    OP_SCAN,
    Bindings,
    BoundExecutor,
    CompiledQuery,
    MatchError,
    Matcher,
    _RegView,
    compile_query,
    delta_scan_source,
    eval_value,
    full_scan_source,
    instantiate,
    run_query,
)
from .language import ENode
from .pattern import PRIMITIVE_OPS, PApp, PLit, Pattern, PVar, parse_pattern
from .sexpr import parse_all

COMPARISON_OPS = {">", "<", ">=", "<=", "!=", "="}


@dataclass(frozen=True)
class TermAtom:
    var: Optional[str]  # None = existence check only
    pattern: Pattern


@dataclass(frozen=True)
class RelAtom:
    name: str
    args: Tuple[Pattern, ...]


@dataclass(frozen=True)
class GuardAtom:
    op: str
    args: Tuple[Pattern, ...]


Atom = Union[TermAtom, RelAtom, GuardAtom]


@dataclass(frozen=True)
class LetAction:
    name: str
    pattern: Pattern


@dataclass(frozen=True)
class UnionAction:
    a: Pattern
    b: Pattern


@dataclass(frozen=True)
class FactAction:
    name: str
    args: Tuple[Pattern, ...]


Action = Union[LetAction, UnionAction, FactAction]


@dataclass
class Rule:
    name: str
    query: List[Atom]
    actions: List[Action]

    def __str__(self) -> str:
        return f"<rule {self.name}: {len(self.query)} atoms>"

    def compiled(self) -> CompiledQuery:
        """The query lowered to a register program (cached per rule)."""
        program = self.__dict__.get("_compiled")
        if program is None:
            program = compile_query(self.query)
            self.__dict__["_compiled"] = program
        return program

    def compiled_actions(self) -> "CompiledActions":
        """The actions lowered against the query's slots (cached)."""
        actions = self.__dict__.get("_compiled_actions")
        if actions is None:
            actions = CompiledActions(self, self.compiled())
            self.__dict__["_compiled_actions"] = actions
        return actions


def rewrite(
    name: str, lhs: Pattern, rhs: Pattern, when: Sequence[Atom] = ()
) -> Rule:
    """``(rewrite lhs rhs :when (...))`` sugar."""
    root = PVar("__root")
    if isinstance(lhs, PVar):
        # bare-variable LHS (e.g. grounded by an IsExpr relation): run the
        # side conditions first so the variable is bound by a relation row
        # rather than enumerating every e-class
        query: List[Atom] = [*when, TermAtom("__root", lhs)]
    else:
        query = [TermAtom("__root", lhs), *when]
    return Rule(name, query, [UnionAction(root, rhs)])


def find_matches(matcher: Matcher, rule: Rule) -> List[Bindings]:
    """All distinct binding sets for one rule (a full pass)."""
    return run_query(matcher.egraph, rule.compiled())


# -- applying actions ----------------------------------------------------------


def apply_actions(egraph: EGraph, rule: Rule, bindings: Bindings) -> None:
    _apply_actions_env(egraph, rule, dict(bindings))


def _apply_actions_env(egraph: EGraph, rule: Rule, env: Bindings) -> None:
    """Apply actions into ``env`` directly (the caller owns the dict)."""
    for action in rule.actions:
        if isinstance(action, LetAction):
            env[action.name] = instantiate(egraph, action.pattern, env)
        elif isinstance(action, UnionAction):
            a = instantiate(egraph, action.a, env)
            b = instantiate(egraph, action.b, env)
            egraph.union(a, b)
        elif isinstance(action, FactAction):
            row = tuple(instantiate(egraph, p, env) for p in action.args)
            egraph.assert_fact(action.name, row)
        else:
            raise MatchError(f"unknown action {action!r}")


class CompiledActions:
    """A rule's actions lowered against its query's register slots.

    Instead of instantiating action patterns by recursive dispatch over a
    bindings dict per match, the engine snapshots the matcher's register
    array and runs these pre-built closures over it.  Let-bound names get
    slots past the query's registers.  The closures take the e-graph as
    an argument, so one compilation (cached on the rule) serves every
    engine and e-graph.
    """

    __slots__ = ("extra_slots", "_steps")

    def __init__(self, rule: Rule, program: CompiledQuery) -> None:
        slot_map = dict(program.var_slots)
        n_regs = max(program.n_regs, 1)
        extra = 0

        def build(pattern: Pattern):
            if isinstance(pattern, PVar):
                slot = slot_map.get(pattern.name)
                if slot is None:
                    raise MatchError(
                        f"unbound variable {pattern.name!r} in action"
                    )
                return lambda eg, env, slot=slot: eg.find(env[slot])
            if isinstance(pattern, PLit):
                kind, value = pattern.kind, pattern.value
                return lambda eg, env: eg.add_literal(kind, value)
            if pattern.head in PRIMITIVE_OPS:
                view_map = dict(slot_map)

                def prim(eg, env, pattern=pattern, view_map=view_map):
                    value = eval_value(eg, pattern, _RegView(view_map, env))
                    if value is None:
                        raise MatchError(
                            f"cannot evaluate primitive {pattern} —"
                            f" non-literal operand"
                        )
                    kind = "i64" if isinstance(value, int) else "f64"
                    return eg.add_literal(kind, value)

                return prim
            head = pattern.head
            children = tuple(build(a) for a in pattern.args)
            return lambda eg, env: eg.add_node(
                ENode(head, tuple([c(eg, env) for c in children]))
            )

        steps = []
        for action in rule.actions:
            if isinstance(action, LetAction):
                builder = build(action.pattern)
                slot = n_regs + extra
                extra += 1
                slot_map[action.name] = slot

                def step(eg, env, builder=builder, slot=slot):
                    env[slot] = builder(eg, env)

            elif isinstance(action, UnionAction):
                build_a = build(action.a)
                build_b = build(action.b)

                def step(eg, env, build_a=build_a, build_b=build_b):
                    eg.union(build_a(eg, env), build_b(eg, env))

            elif isinstance(action, FactAction):
                builders = tuple(build(p) for p in action.args)
                name = action.name

                def step(eg, env, builders=builders, name=name):
                    eg.assert_fact(
                        name, tuple([b(eg, env) for b in builders])
                    )

            else:
                raise MatchError(f"unknown action {action!r}")
            steps.append(step)
        self.extra_slots = extra
        self._steps = tuple(steps)

    def run(self, egraph: EGraph, snapshot: List[int]) -> None:
        env = snapshot + [0] * self.extra_slots if self.extra_slots else snapshot
        for step in self._steps:
            step(egraph, env)


@dataclass
class RunStats:
    iterations: int = 0
    #: distinct (post-dedup) matches applied
    total_matches: int = 0
    seconds: float = 0.0
    saturated: bool = False
    matches_per_rule: Dict[str, int] = field(default_factory=dict)
    # -- timing breakdown ---------------------------------------------------
    match_seconds: float = 0.0
    apply_seconds: float = 0.0
    rebuild_seconds: float = 0.0
    # -- engine counters ----------------------------------------------------
    #: rounds that matched only against the dirty closure
    delta_rounds: int = 0
    #: rounds that matched against the full graph
    full_rounds: int = 0
    #: duplicate matches dropped before application
    dedup_dropped: int = 0
    #: rule name -> rounds skipped while banned by the backoff scheduler
    banned_rounds: Dict[str, int] = field(default_factory=dict)


class BackoffScheduler:
    """egg-style rule backoff: rules whose per-round match count exceeds
    an exponentially growing threshold are banished for an exponentially
    growing number of rounds.

    The default ``match_limit`` is generous on purpose: backoff should
    only engage on genuinely exploding rules, never change results on
    well-behaved workloads (a banished rule's matches are recovered after
    the ban because the engine's per-rule watermarks are left untouched
    while it sleeps).
    """

    def __init__(self, match_limit: int = 4096, ban_length: int = 4) -> None:
        self.match_limit = match_limit
        self.ban_length = ban_length
        self._banned_until: Dict[int, int] = {}
        self._times_banned: Dict[int, int] = {}

    def banned(self, rule_index: int, round_index: int) -> bool:
        return round_index < self._banned_until.get(rule_index, -1)

    def record(self, rule_index: int, n_matches: int, round_index: int) -> bool:
        """Record a rule's match count; True if the rule is banned now
        (its matches this round must be dropped, to be rediscovered after
        the ban)."""
        times = self._times_banned.get(rule_index, 0)
        threshold = self.match_limit << times
        if n_matches > threshold:
            ban = self.ban_length << times
            self._times_banned[rule_index] = times + 1
            self._banned_until[rule_index] = round_index + 1 + ban
            return True
        return False

    def any_banned(self, round_index: int) -> bool:
        return any(
            round_index < until for until in self._banned_until.values()
        )

    def unban_all(self) -> None:
        self._banned_until.clear()


class RuleEngine:
    """Incremental saturation engine over one e-graph and one rule set.

    Persistent across :meth:`run` calls: per-rule dirty-log cursors make
    later passes delta passes, and per-rule dedup tables stop already
    applied matches from being re-applied.  A fresh engine's cursors
    start at zero, which makes its first pass equivalent to a full pass
    (the dirty log reaches back to the e-graph's birth).
    """

    def __init__(
        self,
        egraph: EGraph,
        rules: Sequence[Rule],
        scheduler: Optional[BackoffScheduler] = None,
        use_delta: bool = True,
    ) -> None:
        self.egraph = egraph
        self.rules = list(rules)
        self.programs = [rule.compiled() for rule in self.rules]
        #: built lazily — most rules never survive the head fast path
        self.executors: List[Optional[BoundExecutor]] = [None] * len(
            self.programs
        )
        self.actions = [rule.compiled_actions() for rule in self.rules]
        self.scheduler = scheduler
        self.use_delta = use_delta
        self.cursors = [0] * len(self.rules)
        self.seen: List[Set[tuple]] = [set() for _ in self.rules]
        self.round = 0
        #: deepest closure any delta-safe rule needs (caps the BFS)
        self.max_depth = max(
            (p.depth for p in self.programs if p.delta_safe), default=1
        )
        #: delta-safe rules grouped by their root scan head, plus the
        #: rules that must match fully every round
        self._by_head: Dict[object, List[int]] = {}
        self._full_only: List[int] = []
        for idx, program in enumerate(self.programs):
            first = program.instructions[0]
            if use_delta and program.delta_safe and first[0] == OP_SCAN:
                self._by_head.setdefault(first[2], []).append(idx)
            else:
                self._full_only.append(idx)
        self._full_only_set = set(self._full_only)

    def run(self, iterations: int = 1) -> RunStats:
        """Run up to ``iterations`` match-apply-rebuild rounds."""
        egraph = self.egraph
        find = egraph.find
        full_source = full_scan_source(egraph)
        stats = RunStats()
        start = time.perf_counter()
        if egraph.worklist or egraph._stale_ids:
            # a caller unioned without rebuilding: restore congruence
            # (and the reverse relation index the compiled joins read)
            # before matching
            egraph.rebuild()
        for _ in range(iterations):
            stats.iterations += 1
            version_before = egraph.version
            log_end = egraph.dirty_cursor()
            t_match = time.perf_counter()

            # delta sources shared by rules at the same watermark
            sources: Dict[int, object] = {}

            def source_for(cursor: int):
                src = sources.get(cursor)
                if src is None:
                    closure = egraph.dirty_closure(
                        cursor, log_end, self.max_depth
                    )
                    src = delta_scan_source(egraph, closure)
                    sources[cursor] = src
                return src

            #: (rule index, register snapshot) per accepted match
            pending: List[Tuple[int, List[int]]] = []
            used_delta = False
            banned_this_round = False

            # fast path: when every rule is at the same watermark and no
            # bans are active, one delta plan names the only rules that
            # can have new matches; everyone else's watermark advances
            # without even being visited
            plan_set = None
            cursors = self.cursors
            if (
                self._by_head
                and cursors[0] > 0
                and (
                    self.scheduler is None
                    or not self.scheduler.any_banned(self.round)
                )
                and min(cursors) == max(cursors)
            ):
                delta_source = source_for(cursors[0])
                plan = delta_source.rule_plan(self._by_head, self.programs)
                plan_set = set(plan)
                delta_source.prepare(
                    {self.programs[i].instructions[0][2] for i in plan}
                )
                rule_indices = plan + self._full_only
            else:
                rule_indices = range(len(self.rules))

            for idx in rule_indices:
                rule = self.rules[idx]
                program = self.programs[idx]
                if self.scheduler is not None and self.scheduler.banned(
                    idx, self.round
                ):
                    banned_this_round = True
                    stats.banned_rounds[rule.name] = (
                        stats.banned_rounds.get(rule.name, 0) + 1
                    )
                    continue
                if plan_set is not None:
                    if idx in self._full_only_set:
                        delta = False
                        root_source = full_source
                        first = program.instructions[0]
                        if first[0] == OP_SCAN and not egraph.head_entries(
                            first[2]
                        ):
                            self.cursors[idx] = log_end
                            continue
                    else:
                        delta = True
                        used_delta = True
                        root_source = delta_source.at_depth(program.depth)
                else:
                    cursor = self.cursors[idx]
                    delta = (
                        self.use_delta and program.delta_safe and cursor > 0
                    )
                    if delta:
                        used_delta = True
                        delta_source = source_for(cursor)
                        # no candidate with the root's head within this
                        # rule's depth: it cannot have new matches — just
                        # advance the watermark
                        first = program.instructions[0]
                        min_level = delta_source.min_level(first[2])
                        if min_level is None or min_level > program.depth:
                            self.cursors[idx] = log_end
                            continue
                        root_source = delta_source.at_depth(program.depth)
                    else:
                        root_source = full_source
                        first = program.instructions[0]
                        if first[0] == OP_SCAN and not egraph.head_entries(
                            first[2]
                        ):
                            self.cursors[idx] = log_end
                            continue

                seen = self.seen[idx]
                key_slots = program.key_slots
                new_matches: List[Tuple[tuple, List[int]]] = []
                round_keys: Set[tuple] = set()
                dropped = 0

                def on_match(regs):
                    nonlocal dropped
                    key = tuple([find(regs[s]) for s in key_slots])
                    if key in seen or key in round_keys:
                        dropped += 1
                        return
                    round_keys.add(key)
                    new_matches.append((key, regs[:]))

                executor = self.executors[idx]
                if executor is None:
                    executor = self.executors[idx] = BoundExecutor(
                        program, egraph
                    )
                executor.run(root_source, on_match)
                stats.dedup_dropped += dropped
                if self.scheduler is not None and self.scheduler.record(
                    idx, len(new_matches), self.round
                ):
                    # banned: drop this round's matches and freeze the
                    # watermark so they are rediscovered after the ban
                    banned_this_round = True
                    stats.banned_rounds[rule.name] = (
                        stats.banned_rounds.get(rule.name, 0) + 1
                    )
                    continue
                self.cursors[idx] = log_end
                if new_matches:
                    seen.update(round_keys)
                    pending.extend(
                        (idx, snapshot) for _, snapshot in new_matches
                    )
                    stats.matches_per_rule[rule.name] = (
                        stats.matches_per_rule.get(rule.name, 0)
                        + len(new_matches)
                    )
            if plan_set is not None:
                # rules outside the plan saw nothing new in this window
                for idx in range(len(self.rules)):
                    if idx not in plan_set and idx not in self._full_only_set:
                        self.cursors[idx] = log_end
                used_delta = True
            if used_delta:
                stats.delta_rounds += 1
            else:
                stats.full_rounds += 1
            stats.total_matches += len(pending)
            t_apply = time.perf_counter()
            stats.match_seconds += t_apply - t_match
            actions = self.actions
            for idx, snapshot in pending:
                actions[idx].run(egraph, snapshot)
            t_rebuild = time.perf_counter()
            stats.apply_seconds += t_rebuild - t_apply
            egraph.rebuild()
            stats.rebuild_seconds += time.perf_counter() - t_rebuild
            self.round += 1
            if egraph.version == version_before:
                if banned_this_round and self.scheduler is not None:
                    # saturated only because rules slept: wake them up
                    self.scheduler.unban_all()
                    continue
                stats.saturated = True
                break
        stats.seconds = time.perf_counter() - start
        return stats


def run_rules(
    egraph: EGraph,
    rules: Sequence[Rule],
    iterations: int = 1,
    scheduler: Optional[BackoffScheduler] = None,
) -> RunStats:
    """Run ``iterations`` rounds: match all rules, apply, rebuild."""
    return RuleEngine(egraph, rules, scheduler=scheduler).run(iterations)


def saturate(
    egraph: EGraph,
    rules: Sequence[Rule],
    max_iterations: int = 64,
    scheduler: Optional[BackoffScheduler] = None,
) -> RunStats:
    """Run until no rule changes the e-graph (or the iteration cap)."""
    if scheduler is None:
        scheduler = BackoffScheduler()
    return RuleEngine(egraph, rules, scheduler=scheduler).run(max_iterations)


# -- parsing egglog-ish rule text ------------------------------------------------


def _is_computational(p: Pattern) -> bool:
    if isinstance(p, (PVar, PLit)):
        return True
    return p.head in PRIMITIVE_OPS and all(_is_computational(a) for a in p.args)


def parse_atom(sexpr, relations: Set[str]) -> Atom:
    if not isinstance(sexpr, list) or not sexpr:
        raise ValueError(f"bad atom: {sexpr!r}")
    head = sexpr[0]
    if head == "=" and len(sexpr) == 3:
        lhs = parse_pattern(sexpr[1])
        rhs = parse_pattern(sexpr[2])
        lhs_structural = isinstance(lhs, PApp) and lhs.head not in PRIMITIVE_OPS
        rhs_structural = isinstance(rhs, PApp) and rhs.head not in PRIMITIVE_OPS
        if rhs_structural and isinstance(lhs, PVar):
            return TermAtom(lhs.name, rhs)
        if lhs_structural and isinstance(rhs, PVar):
            return TermAtom(rhs.name, lhs)
        if lhs_structural and rhs_structural:
            raise ValueError(f"cannot relate two structural patterns: {sexpr}")
        return GuardAtom("=", (lhs, rhs))
    if head in COMPARISON_OPS:
        return GuardAtom(head, tuple(parse_pattern(a) for a in sexpr[1:]))
    if head in relations:
        return RelAtom(head, tuple(parse_pattern(a) for a in sexpr[1:]))
    # bare structural pattern: existence check
    return TermAtom(None, parse_pattern(sexpr))


def parse_action(sexpr, relations: Set[str]) -> Action:
    if not isinstance(sexpr, list) or not sexpr:
        raise ValueError(f"bad action: {sexpr!r}")
    head = sexpr[0]
    if head == "let" and len(sexpr) == 3:
        return LetAction(sexpr[1], parse_pattern(sexpr[2]))
    if head == "union" and len(sexpr) == 3:
        return UnionAction(parse_pattern(sexpr[1]), parse_pattern(sexpr[2]))
    if head in relations:
        return FactAction(head, tuple(parse_pattern(a) for a in sexpr[1:]))
    raise ValueError(f"unknown action head {head!r}")


def parse_program(
    text: str, relations: Optional[Set[str]] = None
) -> Tuple[List[Rule], Set[str]]:
    """Parse a sequence of ``relation``/``rewrite``/``rule`` declarations.

    Returns the rules plus the full set of declared relation names.
    ``function`` declarations are treated as operator declarations (their
    equations are ordinary rewrites in this engine) and skipped.
    """
    relations = set(relations or ())
    rules: List[Rule] = []
    counter = 0
    for decl in parse_all(text):
        if not isinstance(decl, list) or not decl:
            raise ValueError(f"bad declaration: {decl!r}")
        kind = decl[0]
        if kind == "relation":
            relations.add(decl[1])
        elif kind in ("function", "datatype", "sort"):
            continue  # structural declarations are implicit here
        elif kind == "rewrite":
            counter += 1
            lhs = parse_pattern(decl[1])
            rhs = parse_pattern(decl[2])
            when: List[Atom] = []
            rest = decl[3:]
            while rest:
                if rest[0] == ":when":
                    when.extend(
                        parse_atom(c, relations) for c in rest[1]
                    )
                    rest = rest[2:]
                elif rest[0] == ":name":
                    rest = rest[2:]
                else:
                    raise ValueError(f"unknown rewrite option {rest[0]!r}")
            rules.append(rewrite(f"rewrite-{counter}", lhs, rhs, when))
        elif kind == "rule":
            counter += 1
            atoms = [parse_atom(a, relations) for a in decl[1]]
            actions = [parse_action(a, relations) for a in decl[2]]
            name = f"rule-{counter}"
            rest = decl[3:]
            while rest:
                if rest[0] == ":name":
                    name = str(rest[1]).strip('"')
                    rest = rest[2:]
                else:
                    raise ValueError(f"unknown rule option {rest[0]!r}")
            rules.append(Rule(name, atoms, actions))
        else:
            raise ValueError(f"unknown declaration {kind!r}")
    return rules, relations
