"""Rules: egglog-style rewrites, queries, and actions.

A rule has a *query* (a conjunction of atoms) and *actions*.  Atoms:

* ``TermAtom(var, pattern)`` — ``(= var (Op ...))``; matches the pattern
  anywhere in the e-graph and binds ``var`` to the matched class.
* ``RelAtom(name, args)`` — ``(rel a b)``; matches stored relation rows.
* ``GuardAtom(op, args)`` — primitive predicates over literal payloads,
  e.g. ``(> l2 l1)`` or ``(= 0 (% l2 l1))``.  A guard ``(= x <expr>)``
  with ``x`` unbound *binds* ``x`` to the computed literal (egglog-style
  primitive evaluation).

Actions: ``LetAction`` (bind a constructed term), ``UnionAction``,
``FactAction`` (assert a relation row).

Rules can be written programmatically or parsed from egglog-ish text via
:func:`parse_program`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from .egraph import EGraph
from .ematch import Bindings, MatchError, Matcher, eval_value, instantiate
from .pattern import PRIMITIVE_OPS, PApp, PLit, Pattern, PVar, parse_pattern
from .sexpr import parse_all

COMPARISON_OPS = {">", "<", ">=", "<=", "!=", "="}


@dataclass(frozen=True)
class TermAtom:
    var: Optional[str]  # None = existence check only
    pattern: Pattern


@dataclass(frozen=True)
class RelAtom:
    name: str
    args: Tuple[Pattern, ...]


@dataclass(frozen=True)
class GuardAtom:
    op: str
    args: Tuple[Pattern, ...]


Atom = Union[TermAtom, RelAtom, GuardAtom]


@dataclass(frozen=True)
class LetAction:
    name: str
    pattern: Pattern


@dataclass(frozen=True)
class UnionAction:
    a: Pattern
    b: Pattern


@dataclass(frozen=True)
class FactAction:
    name: str
    args: Tuple[Pattern, ...]


Action = Union[LetAction, UnionAction, FactAction]


@dataclass
class Rule:
    name: str
    query: List[Atom]
    actions: List[Action]

    def __str__(self) -> str:
        return f"<rule {self.name}: {len(self.query)} atoms>"


def rewrite(
    name: str, lhs: Pattern, rhs: Pattern, when: Sequence[Atom] = ()
) -> Rule:
    """``(rewrite lhs rhs :when (...))`` sugar."""
    root = PVar("__root")
    if isinstance(lhs, PVar):
        # bare-variable LHS (e.g. grounded by an IsExpr relation): run the
        # side conditions first so the variable is bound by a relation row
        # rather than enumerating every e-class
        query: List[Atom] = [*when, TermAtom("__root", lhs)]
    else:
        query = [TermAtom("__root", lhs), *when]
    return Rule(name, query, [UnionAction(root, rhs)])


# -- matching a whole query ---------------------------------------------------


def _match_query(
    matcher: Matcher, atoms: Sequence[Atom], bindings: Bindings, i: int
) -> Iterator[Bindings]:
    if i == len(atoms):
        yield bindings
        return
    atom = atoms[i]
    egraph = matcher.egraph
    if isinstance(atom, TermAtom):
        for eclass_id, partial in matcher.match_anywhere(atom.pattern, bindings):
            if atom.var is not None:
                bound = partial.get(atom.var)
                if bound is not None and egraph.find(bound) != eclass_id:
                    continue
                partial = dict(partial)
                partial[atom.var] = eclass_id
            yield from _match_query(matcher, atoms, partial, i + 1)
        return
    if isinstance(atom, RelAtom):
        for row in list(egraph.facts(atom.name)):
            if len(row) != len(atom.args):
                continue
            for partial in _match_row(matcher, atom.args, row, bindings, 0):
                yield from _match_query(matcher, atoms, partial, i + 1)
        return
    if isinstance(atom, GuardAtom):
        for partial in _eval_guard(matcher, atom, bindings):
            yield from _match_query(matcher, atoms, partial, i + 1)
        return
    raise MatchError(f"unknown atom {atom!r}")


def _match_row(
    matcher: Matcher, patterns, row, bindings: Bindings, i: int
) -> Iterator[Bindings]:
    if i == len(patterns):
        yield bindings
        return
    value = row[i]
    if not isinstance(value, int):
        raise MatchError(f"relation row holds non-eclass value {value!r}")
    for partial in matcher.match_in_class(patterns[i], value, bindings):
        yield from _match_row(matcher, patterns, row, partial, i + 1)


def _eval_guard(
    matcher: Matcher, atom: GuardAtom, bindings: Bindings
) -> Iterator[Bindings]:
    egraph = matcher.egraph
    if atom.op == "=":
        lhs, rhs = atom.args
        lhs_value = eval_value(egraph, lhs, bindings)
        rhs_value = eval_value(egraph, rhs, bindings)
        if lhs_value is not None and rhs_value is not None:
            if lhs_value == rhs_value:
                yield bindings
            return
        # one side unbound variable: bind it to the computed literal
        for unbound, value in ((lhs, rhs_value), (rhs, lhs_value)):
            if (
                isinstance(unbound, PVar)
                and unbound.name not in bindings
                and value is not None
            ):
                kind = "i64" if isinstance(value, int) else "f64"
                new = dict(bindings)
                new[unbound.name] = egraph.add_literal(kind, value)
                yield new
                return
        # fall back to e-class equality for bound, non-literal vars
        if isinstance(lhs, PVar) and isinstance(rhs, PVar):
            a, b = bindings.get(lhs.name), bindings.get(rhs.name)
            if a is not None and b is not None and egraph.find(a) == egraph.find(b):
                yield bindings
            return
        return
    values = [eval_value(egraph, a, bindings) for a in atom.args]
    if any(v is None for v in values):
        return
    a, b = values
    ok = {
        ">": a > b,
        "<": a < b,
        ">=": a >= b,
        "<=": a <= b,
        "!=": a != b,
    }[atom.op]
    if ok:
        yield bindings


def find_matches(matcher: Matcher, rule: Rule) -> List[Bindings]:
    return list(_match_query(matcher, rule.query, {}, 0))


# -- applying actions ----------------------------------------------------------


def apply_actions(egraph: EGraph, rule: Rule, bindings: Bindings) -> None:
    env = dict(bindings)
    for action in rule.actions:
        if isinstance(action, LetAction):
            env[action.name] = instantiate(egraph, action.pattern, env)
        elif isinstance(action, UnionAction):
            a = instantiate(egraph, action.a, env)
            b = instantiate(egraph, action.b, env)
            egraph.union(a, b)
        elif isinstance(action, FactAction):
            row = tuple(instantiate(egraph, p, env) for p in action.args)
            egraph.assert_fact(action.name, row)
        else:
            raise MatchError(f"unknown action {action!r}")


@dataclass
class RunStats:
    iterations: int = 0
    total_matches: int = 0
    seconds: float = 0.0
    saturated: bool = False
    matches_per_rule: Dict[str, int] = field(default_factory=dict)


def run_rules(
    egraph: EGraph, rules: Sequence[Rule], iterations: int = 1
) -> RunStats:
    """Run ``iterations`` rounds: match all rules, apply, rebuild."""
    stats = RunStats()
    start = time.perf_counter()
    for _ in range(iterations):
        stats.iterations += 1
        version_before = egraph.version
        matcher = Matcher(egraph)
        pending: List[Tuple[Rule, Bindings]] = []
        for rule in rules:
            found = find_matches(matcher, rule)
            stats.matches_per_rule[rule.name] = (
                stats.matches_per_rule.get(rule.name, 0) + len(found)
            )
            pending.extend((rule, b) for b in found)
        stats.total_matches += len(pending)
        for rule, bindings in pending:
            apply_actions(egraph, rule, bindings)
        egraph.rebuild()
        if egraph.version == version_before:
            stats.saturated = True
            break
    stats.seconds = time.perf_counter() - start
    return stats


def saturate(
    egraph: EGraph, rules: Sequence[Rule], max_iterations: int = 64
) -> RunStats:
    """Run until no rule changes the e-graph (or the iteration cap)."""
    stats = run_rules(egraph, rules, iterations=max_iterations)
    return stats


# -- parsing egglog-ish rule text ------------------------------------------------


def _is_computational(p: Pattern) -> bool:
    if isinstance(p, (PVar, PLit)):
        return True
    return p.head in PRIMITIVE_OPS and all(_is_computational(a) for a in p.args)


def parse_atom(sexpr, relations: Set[str]) -> Atom:
    if not isinstance(sexpr, list) or not sexpr:
        raise ValueError(f"bad atom: {sexpr!r}")
    head = sexpr[0]
    if head == "=" and len(sexpr) == 3:
        lhs = parse_pattern(sexpr[1])
        rhs = parse_pattern(sexpr[2])
        lhs_structural = isinstance(lhs, PApp) and lhs.head not in PRIMITIVE_OPS
        rhs_structural = isinstance(rhs, PApp) and rhs.head not in PRIMITIVE_OPS
        if rhs_structural and isinstance(lhs, PVar):
            return TermAtom(lhs.name, rhs)
        if lhs_structural and isinstance(rhs, PVar):
            return TermAtom(rhs.name, lhs)
        if lhs_structural and rhs_structural:
            raise ValueError(f"cannot relate two structural patterns: {sexpr}")
        return GuardAtom("=", (lhs, rhs))
    if head in COMPARISON_OPS:
        return GuardAtom(head, tuple(parse_pattern(a) for a in sexpr[1:]))
    if head in relations:
        return RelAtom(head, tuple(parse_pattern(a) for a in sexpr[1:]))
    # bare structural pattern: existence check
    return TermAtom(None, parse_pattern(sexpr))


def parse_action(sexpr, relations: Set[str]) -> Action:
    if not isinstance(sexpr, list) or not sexpr:
        raise ValueError(f"bad action: {sexpr!r}")
    head = sexpr[0]
    if head == "let" and len(sexpr) == 3:
        return LetAction(sexpr[1], parse_pattern(sexpr[2]))
    if head == "union" and len(sexpr) == 3:
        return UnionAction(parse_pattern(sexpr[1]), parse_pattern(sexpr[2]))
    if head in relations:
        return FactAction(head, tuple(parse_pattern(a) for a in sexpr[1:]))
    raise ValueError(f"unknown action head {head!r}")


def parse_program(
    text: str, relations: Optional[Set[str]] = None
) -> Tuple[List[Rule], Set[str]]:
    """Parse a sequence of ``relation``/``rewrite``/``rule`` declarations.

    Returns the rules plus the full set of declared relation names.
    ``function`` declarations are treated as operator declarations (their
    equations are ordinary rewrites in this engine) and skipped.
    """
    relations = set(relations or ())
    rules: List[Rule] = []
    counter = 0
    for decl in parse_all(text):
        if not isinstance(decl, list) or not decl:
            raise ValueError(f"bad declaration: {decl!r}")
        kind = decl[0]
        if kind == "relation":
            relations.add(decl[1])
        elif kind in ("function", "datatype", "sort"):
            continue  # structural declarations are implicit here
        elif kind == "rewrite":
            counter += 1
            lhs = parse_pattern(decl[1])
            rhs = parse_pattern(decl[2])
            when: List[Atom] = []
            rest = decl[3:]
            while rest:
                if rest[0] == ":when":
                    when.extend(
                        parse_atom(c, relations) for c in rest[1]
                    )
                    rest = rest[2:]
                elif rest[0] == ":name":
                    rest = rest[2:]
                else:
                    raise ValueError(f"unknown rewrite option {rest[0]!r}")
            rules.append(rewrite(f"rewrite-{counter}", lhs, rhs, when))
        elif kind == "rule":
            counter += 1
            atoms = [parse_atom(a, relations) for a in decl[1]]
            actions = [parse_action(a, relations) for a in decl[2]]
            name = f"rule-{counter}"
            rest = decl[3:]
            while rest:
                if rest[0] == ":name":
                    name = str(rest[1]).strip('"')
                    rest = rest[2:]
                else:
                    raise ValueError(f"unknown rule option {rest[0]!r}")
            rules.append(Rule(name, atoms, actions))
        else:
            raise ValueError(f"unknown declaration {kind!r}")
    return rules, relations
