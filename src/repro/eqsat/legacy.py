"""The pre-incremental saturation loop, preserved for comparison.

This is the engine as it stood before the incremental overhaul: every
round snapshots the whole e-graph into a by-head index
(:class:`LegacyMatcher`), re-matches every rule against the entire graph
(re-deriving every old match — a class holding several same-head nodes
even re-yields its matches once per node), and re-applies everything it
finds.  ``benchmarks/bench_eqsat_speed.py`` runs it side by side with
``rules.RuleEngine`` to report the speedup and to assert both engines
reach identical results; keep its semantics frozen.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Sequence, Tuple

from .egraph import EGraph
from .ematch import Bindings, MatchError, eval_value
from .pattern import PApp, PLit, Pattern, PVar
from .rules import (
    Atom,
    GuardAtom,
    RelAtom,
    Rule,
    RunStats,
    TermAtom,
    apply_actions,
)
from .schedule import ScheduleStats


class LegacyMatcher:
    """The original snapshot matcher, duplicate yields and all.

    The maintained :class:`~.ematch.Matcher` deduplicates
    ``match_anywhere`` results (one of this PR-era engine's fixes); the
    old engine did not, and its cost profile depended on re-expanding
    every duplicate through the query join, so the frozen copy lives
    here.
    """

    def __init__(self, egraph: EGraph) -> None:
        self.egraph = egraph
        self.index = egraph.nodes_by_head()

    def match_in_class(
        self, pattern: Pattern, eclass_id: int, bindings: Bindings
    ) -> Iterator[Bindings]:
        egraph = self.egraph
        eclass_id = egraph.find(eclass_id)
        if isinstance(pattern, PVar):
            bound = bindings.get(pattern.name)
            if bound is not None:
                if egraph.find(bound) == eclass_id:
                    yield bindings
                return
            new = dict(bindings)
            new[pattern.name] = eclass_id
            yield new
            return
        if isinstance(pattern, PLit):
            value = egraph.literal_value(eclass_id)
            if value is not None and value == pattern.value:
                yield bindings
            return
        for node in list(egraph.nodes_of(eclass_id)):
            if node.head != pattern.head or len(node.args) != len(pattern.args):
                continue
            yield from self._match_args(pattern.args, node.args, bindings, 0)

    def _match_args(self, patterns, arg_ids, bindings, i) -> Iterator[Bindings]:
        if i == len(patterns):
            yield bindings
            return
        for partial in self.match_in_class(patterns[i], arg_ids[i], bindings):
            yield from self._match_args(patterns, arg_ids, partial, i + 1)

    def match_anywhere(
        self, pattern: Pattern, bindings: Bindings
    ) -> Iterator[tuple]:
        if isinstance(pattern, PVar) and pattern.name in bindings:
            root = self.egraph.find(bindings[pattern.name])
            yield root, bindings
            return
        if isinstance(pattern, PApp):
            for eclass_id, _node in self.index.get(pattern.head, ()):  # noqa: B007
                eclass_id = self.egraph.find(eclass_id)
                for out in self.match_in_class(pattern, eclass_id, bindings):
                    yield eclass_id, out
            return
        for eclass_id in self.egraph.eclass_ids():
            if eclass_id not in self.egraph.classes:
                continue
            for out in self.match_in_class(pattern, eclass_id, bindings):
                yield self.egraph.find(eclass_id), out


def _match_query(
    matcher: LegacyMatcher, atoms: Sequence[Atom], bindings: Bindings, i: int
) -> Iterator[Bindings]:
    if i == len(atoms):
        yield bindings
        return
    atom = atoms[i]
    egraph = matcher.egraph
    if isinstance(atom, TermAtom):
        for eclass_id, partial in matcher.match_anywhere(atom.pattern, bindings):
            if atom.var is not None:
                bound = partial.get(atom.var)
                if bound is not None and egraph.find(bound) != eclass_id:
                    continue
                partial = dict(partial)
                partial[atom.var] = eclass_id
            yield from _match_query(matcher, atoms, partial, i + 1)
        return
    if isinstance(atom, RelAtom):
        for row in list(egraph.facts(atom.name)):
            if len(row) != len(atom.args):
                continue
            for partial in _match_row(matcher, atom.args, row, bindings, 0):
                yield from _match_query(matcher, atoms, partial, i + 1)
        return
    if isinstance(atom, GuardAtom):
        for partial in _eval_guard(matcher, atom, bindings):
            yield from _match_query(matcher, atoms, partial, i + 1)
        return
    raise MatchError(f"unknown atom {atom!r}")


def _match_row(
    matcher: LegacyMatcher, patterns, row, bindings: Bindings, i: int
) -> Iterator[Bindings]:
    if i == len(patterns):
        yield bindings
        return
    value = row[i]
    if not isinstance(value, int):
        raise MatchError(f"relation row holds non-eclass value {value!r}")
    for partial in matcher.match_in_class(patterns[i], value, bindings):
        yield from _match_row(matcher, patterns, row, partial, i + 1)


def _eval_guard(
    matcher: LegacyMatcher, atom: GuardAtom, bindings: Bindings
) -> Iterator[Bindings]:
    egraph = matcher.egraph
    if atom.op == "=":
        lhs, rhs = atom.args
        lhs_value = eval_value(egraph, lhs, bindings)
        rhs_value = eval_value(egraph, rhs, bindings)
        if lhs_value is not None and rhs_value is not None:
            if lhs_value == rhs_value:
                yield bindings
            return
        # one side unbound variable: bind it to the computed literal
        for unbound, value in ((lhs, rhs_value), (rhs, lhs_value)):
            if (
                isinstance(unbound, PVar)
                and unbound.name not in bindings
                and value is not None
            ):
                kind = "i64" if isinstance(value, int) else "f64"
                new = dict(bindings)
                new[unbound.name] = egraph.add_literal(kind, value)
                yield new
                return
        # fall back to e-class equality for bound, non-literal vars
        if isinstance(lhs, PVar) and isinstance(rhs, PVar):
            a, b = bindings.get(lhs.name), bindings.get(rhs.name)
            if a is not None and b is not None and egraph.find(a) == egraph.find(b):
                yield bindings
            return
        return
    values = [eval_value(egraph, a, bindings) for a in atom.args]
    if any(v is None for v in values):
        return
    a, b = values
    ok = {
        ">": a > b,
        "<": a < b,
        ">=": a >= b,
        "<=": a <= b,
        "!=": a != b,
    }[atom.op]
    if ok:
        yield bindings


def legacy_find_matches(matcher: LegacyMatcher, rule: Rule) -> List[Bindings]:
    return list(_match_query(matcher, rule.query, {}, 0))


def legacy_run_rules(
    egraph: EGraph, rules: Sequence[Rule], iterations: int = 1
) -> RunStats:
    """Run ``iterations`` rounds: match all rules, apply, rebuild."""
    stats = RunStats()
    start = time.perf_counter()
    for _ in range(iterations):
        stats.iterations += 1
        version_before = egraph.version
        t_match = time.perf_counter()
        matcher = LegacyMatcher(egraph)
        pending: List[Tuple[Rule, Bindings]] = []
        for rule in rules:
            found = legacy_find_matches(matcher, rule)
            stats.matches_per_rule[rule.name] = (
                stats.matches_per_rule.get(rule.name, 0) + len(found)
            )
            pending.extend((rule, b) for b in found)
        stats.total_matches += len(pending)
        stats.full_rounds += 1
        t_apply = time.perf_counter()
        stats.match_seconds += t_apply - t_match
        for rule, bindings in pending:
            apply_actions(egraph, rule, bindings)
        t_rebuild = time.perf_counter()
        stats.apply_seconds += t_rebuild - t_apply
        egraph.rebuild()
        stats.rebuild_seconds += time.perf_counter() - t_rebuild
        if egraph.version == version_before:
            stats.saturated = True
            break
    stats.seconds = time.perf_counter() - start
    return stats


def legacy_saturate(
    egraph: EGraph, rules: Sequence[Rule], max_iterations: int = 64
) -> RunStats:
    """Run until no rule changes the e-graph (or the iteration cap)."""
    return legacy_run_rules(egraph, rules, iterations=max_iterations)


def legacy_run_phased(
    egraph: EGraph,
    main_rules: Sequence[Rule],
    supporting_rules: Sequence[Rule],
    iterations: int = 4,
    saturate_limit: int = 64,
) -> ScheduleStats:
    """The paper's schedule on the legacy engine (full re-match per round)."""
    stats = ScheduleStats()
    start = time.perf_counter()
    for _ in range(iterations):
        stats.outer_iterations += 1
        stats.supporting_stats.append(
            legacy_saturate(egraph, supporting_rules, max_iterations=saturate_limit)
        )
        version_before = egraph.version
        stats.main_stats.append(
            legacy_run_rules(egraph, main_rules, iterations=1)
        )
        if egraph.version == version_before:
            stats.saturated = True
            break
    # a final supporting pass so analyses cover the last main-rule output
    stats.supporting_stats.append(
        legacy_saturate(egraph, supporting_rules, max_iterations=saturate_limit)
    )
    stats.seconds = time.perf_counter() - start
    return stats
