"""An egglog-style equality saturation engine.

E-graphs with deferred rebuilding (egg), Datalog-style relations and
rules (egglog), phased rule schedules, and cost-based extraction.
"""

from .egraph import EClass, EGraph
from .ematch import (
    Bindings,
    CompiledQuery,
    MatchError,
    Matcher,
    compile_query,
    eval_value,
    instantiate,
    run_query,
)
from .extract import (
    CostModel,
    ExtractionError,
    compute_costs,
    extract_best,
    extraction_cost,
)
from .language import ENode, F, I, Sym, T, Term
from .pattern import PApp, PLit, PVar, Pattern, parse_pattern, pattern_vars
from .rules import (
    Action,
    Atom,
    BackoffScheduler,
    FactAction,
    GuardAtom,
    LetAction,
    RelAtom,
    Rule,
    RuleEngine,
    RunStats,
    TermAtom,
    UnionAction,
    find_matches,
    parse_program,
    rewrite,
    run_rules,
    saturate,
)
from .schedule import ScheduleStats, run_phased
from .sexpr import parse_all, parse_one

__all__ = [name for name in dir() if not name.startswith("_")]
