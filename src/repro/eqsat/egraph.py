"""An egg-style E-graph: hashcons + union-find + deferred rebuilding.

Follows Willsey et al. (POPL'21): ``union`` only merges the union-find and
defers congruence repair to ``rebuild``, which processes a worklist of
touched classes.  Relations (egglog-style Datalog facts over e-classes)
live alongside the term structure and are re-canonicalized on rebuild.

Three structures make saturation incremental (they are maintained by the
same mutations that maintain the hashcons, so they are never rebuilt from
scratch):

* a persistent **head index** (``head_entries``) grouping hashcons
  entries by operator head, so matchers never re-snapshot the graph;
* an append-only **dirty log** of touched e-class ids; rule engines keep
  per-rule cursors into it and ask for the **dirty closure** (touched
  classes plus all transitive parents) to delta-match only against what
  changed since their last pass;
* a **reverse relation index** (class id -> rows mentioning it) so
  ``rebuild`` re-canonicalizes only rows that mention a merged-away
  class instead of rescanning every fact.

A minimal saturate-and-extract session — insert a term, rewrite
``1 + 1`` to ``2`` until nothing changes, and extract the cheapest
equivalent form:

>>> from repro.eqsat import (
...     EGraph, I, T, extract_best, parse_one, parse_pattern, rewrite,
...     saturate,
... )
>>> eg = EGraph()
>>> root = eg.add_term(T("Mul", T("Add", I(1), I(1)), I(3)))
>>> fold = rewrite(
...     "fold-1+1",
...     parse_pattern(parse_one("(Add 1 1)")),
...     parse_pattern(parse_one("2")),
... )
>>> stats = saturate(eg, [fold])
>>> eg.lookup_term(T("Mul", I(2), I(3))) == eg.find(root)
True
>>> print(extract_best(eg, root))
(Mul 2 3)
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .language import ENode, Head, Term

#: Literal payloads are interned by equality, but NaN compares unequal to
#: everything including itself — a fresh NaN payload would never hit the
#: hashcons and equal literals would land in distinct classes.  All NaN
#: payloads are therefore replaced by this single object; tuple equality
#: short-circuits on identity, so lookups and inserts agree.
_CANONICAL_NAN = float("nan")


def _canon_head(head: Head) -> Head:
    """Canonicalize a node head's literal payload (NaN normalization)."""
    if isinstance(head, tuple):
        value = head[1]
        if isinstance(value, float) and value != value:
            return (head[0], _CANONICAL_NAN)
    return head


class EClass:
    """One equivalence class of e-nodes."""

    __slots__ = ("id", "nodes", "parents")

    def __init__(self, eclass_id: int) -> None:
        self.id = eclass_id
        self.nodes: Set[ENode] = set()
        #: e-nodes that reference this class, with the class they live in
        self.parents: List[Tuple[ENode, int]] = []


class EGraph:
    """The e-graph, including egglog-style relations."""

    def __init__(self) -> None:
        self._parent: List[int] = []
        self.classes: Dict[int, EClass] = {}
        self.hashcons: Dict[ENode, int] = {}
        self.worklist: List[int] = []
        #: relation name -> set of canonical argument tuples
        self.relations: Dict[str, Set[Tuple[object, ...]]] = defaultdict(set)
        #: bumps on every change; rules sets use it to detect saturation
        self.version = 0
        #: persistent head -> {node: owner class} index (mirrors hashcons)
        self._index: Dict[Head, Dict[ENode, int]] = {}
        #: append-only log of touched class ids; engines keep cursors
        self._dirty_log: List[int] = []
        #: class id -> relation rows that mention it (for incremental
        #: canonicalization); keyed on ids that were canonical at insert
        self._rows_of: Dict[int, Set[Tuple[str, Tuple[object, ...]]]] = {}
        #: class ids merged away since the last relation canonicalization
        self._stale_ids: List[int] = []
        #: memo for extraction costs: (model key, version, best) — see
        #: :func:`repro.eqsat.extract.compute_costs`
        self._cost_cache: Optional[tuple] = None

    # -- union-find ----------------------------------------------------------

    def find(self, eclass_id: int) -> int:
        root = eclass_id
        while self._parent[root] != root:
            root = self._parent[root]
        # path compression
        while self._parent[eclass_id] != root:
            self._parent[eclass_id], eclass_id = root, self._parent[eclass_id]
        return root

    def _new_class(self) -> EClass:
        eclass_id = len(self._parent)
        self._parent.append(eclass_id)
        eclass = EClass(eclass_id)
        self.classes[eclass_id] = eclass
        return eclass

    # -- insertion -----------------------------------------------------------

    def add_node(self, node: ENode) -> int:
        if node.args:
            find = self.find
            node = ENode(
                _canon_head(node.head),
                tuple([find(a) for a in node.args]),
            )
        else:
            node = ENode(_canon_head(node.head), ())
        existing = self.hashcons.get(node)
        if existing is not None:
            return self.find(existing)
        eclass = self._new_class()
        eclass.nodes.add(node)
        self.hashcons[node] = eclass.id
        self._index.setdefault(node.head, {})[node] = eclass.id
        for child in node.args:
            self.classes[self.find(child)].parents.append((node, eclass.id))
        self.version += 1
        self._dirty_log.append(eclass.id)
        return eclass.id

    def add_term(self, term: Term) -> int:
        args = tuple(self.add_term(a) for a in term.args)
        return self.add_node(ENode(term.head, args))

    def lookup_term(self, term: Term) -> Optional[int]:
        """The e-class of a term if it is present, else None.

        Literal terms are a base case: their payload lives in the head
        (canonicalized, see :func:`_canon_head`), not in child e-classes,
        so the recursion stops instead of descending into the payload.
        """
        if term.is_literal():
            found = self.hashcons.get(ENode(_canon_head(term.head), ()))
            return self.find(found) if found is not None else None
        args = []
        for a in term.args:
            child = self.lookup_term(a)
            if child is None:
                return None
            args.append(child)
        node = ENode(term.head, tuple(args)).canonicalize(self.find)
        found = self.hashcons.get(node)
        return self.find(found) if found is not None else None

    # -- union + rebuild -------------------------------------------------------

    def union(self, a: int, b: int) -> bool:
        a, b = self.find(a), self.find(b)
        if a == b:
            return False
        # merge smaller into larger to bound parent-list copying
        if len(self.classes[a].parents) < len(self.classes[b].parents):
            a, b = b, a
        self._parent[b] = a
        class_a, class_b = self.classes[a], self.classes[b]
        class_a.nodes |= class_b.nodes
        class_a.parents.extend(class_b.parents)
        del self.classes[b]
        self.worklist.append(a)
        self.version += 1
        self._dirty_log.append(a)
        # a merge can change row-mediated joins and guards (row values
        # compare via find, literal payloads can appear); relation rows
        # create no parent edges, so dirty every class those rows
        # mention — dirt then reaches match roots through the rows'
        # structurally-bound arguments
        for key in (a, b):
            for _name, row in self._rows_of.get(key, ()):
                for value in row:
                    if isinstance(value, int):
                        self._dirty_log.append(value)
        self._stale_ids.append(b)
        return True

    def rebuild(self) -> None:
        """Restore the congruence invariant after a batch of unions."""
        while self.worklist:
            todo = {self.find(c) for c in self.worklist}
            self.worklist.clear()
            for eclass_id in todo:
                self._repair(eclass_id)
        self._canonicalize_relations()

    def _repair(self, eclass_id: int) -> None:
        eclass = self.classes.get(self.find(eclass_id))
        if eclass is None:
            return
        # re-canonicalize every parent node; collisions imply congruence
        new_parents: Dict[ENode, int] = {}
        for node, owner in eclass.parents:
            self.hashcons.pop(node, None)
            entries = self._index.get(node.head)
            if entries is not None:
                entries.pop(node, None)
            node = node.canonicalize(self.find)
            owner = self.find(owner)
            if node in new_parents:
                self.union(owner, new_parents[node])
                owner = self.find(owner)
            new_parents[node] = owner
            self.hashcons[node] = owner
            self._index.setdefault(node.head, {})[node] = owner
        eclass = self.classes.get(self.find(eclass_id))
        if eclass is not None:
            eclass.parents = [
                (node, self.find(owner)) for node, owner in new_parents.items()
            ]
            eclass.nodes = {n.canonicalize(self.find) for n in eclass.nodes}

    def _canonicalize_relations(self) -> None:
        """Re-canonicalize only rows that mention a merged-away class."""
        while self._stale_ids:
            stale = self._stale_ids.pop()
            entries = self._rows_of.pop(stale, None)
            if not entries:
                continue
            for name, row in entries:
                rows = self.relations[name]
                if row not in rows:
                    continue  # already rewritten via another stale id
                canon = tuple(
                    self.find(v) if isinstance(v, int) else v for v in row
                )
                if canon == row:
                    continue
                rows.discard(row)
                for v in row:
                    if isinstance(v, int) and v != stale:
                        other = self._rows_of.get(v)
                        if other is not None:
                            other.discard((name, row))
                if canon not in rows:
                    rows.add(canon)
                    for v in canon:
                        if isinstance(v, int):
                            self._rows_of.setdefault(v, set()).add(
                                (name, canon)
                            )

    # -- relations ---------------------------------------------------------------

    def assert_fact(self, name: str, row: Tuple[int, ...]) -> bool:
        canon = tuple(self.find(v) if isinstance(v, int) else v for v in row)
        if canon in self.relations[name]:
            return False
        self.relations[name].add(canon)
        self.version += 1
        for v in canon:
            if isinstance(v, int):
                self._rows_of.setdefault(v, set()).add((name, canon))
                self._dirty_log.append(v)
        return True

    def facts(self, name: str) -> Set[Tuple[object, ...]]:
        return self.relations.get(name, set())

    def rows_mentioning(
        self, eclass_id: int
    ) -> Set[Tuple[str, Tuple[object, ...]]]:
        """All ``(relation name, row)`` pairs whose row mentions the class.

        Served from the reverse relation index; matchers use it to join
        relation atoms on an already-bound argument instead of scanning
        every row of the relation.
        """
        return self._rows_of.get(self.find(eclass_id), set())

    # -- incremental-matching support ------------------------------------------

    def head_entries(self, head: Head) -> Dict[ENode, int]:
        """Persistent hashcons entries for one head: ``{node: owner}``.

        Owners may be stale (merged away) — resolve through :meth:`find`.
        The mapping is maintained incrementally and must not be mutated
        by callers.
        """
        return self._index.get(head, {})

    def dirty_cursor(self) -> int:
        """The current end of the dirty log (a watermark for delta reads)."""
        return len(self._dirty_log)

    def dirty_closure(
        self,
        cursor: int,
        end: Optional[int] = None,
        max_depth: Optional[int] = None,
    ) -> Dict[int, int]:
        """Canonical classes touched in ``log[cursor:end]`` plus their
        transitive parents, mapped to their parent-distance from the
        nearest touched class (touched classes are at level 0).

        Any new match must bind at least one touched class somewhere in
        its match tree, so its root class is within the closure at a
        level bounded by the query's structural depth — that is what
        makes root-restricted delta matching exact (see
        ``rules.RuleEngine``).  ``max_depth`` caps the upward walk for
        engines whose deepest query needs only that many levels.
        """
        if end is None:
            end = len(self._dirty_log)
        find = self.find
        classes = self.classes
        levels: Dict[int, int] = {}
        frontier: List[int] = []
        for cid in self._dirty_log[cursor:end]:
            root = find(cid)
            if root not in levels and root in classes:
                levels[root] = 0
                frontier.append(root)
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            depth += 1
            next_frontier: List[int] = []
            for cid in frontier:
                eclass = classes.get(cid)
                if eclass is None:
                    continue
                for _node, owner in eclass.parents:
                    owner = find(owner)
                    if owner not in levels and owner in classes:
                        levels[owner] = depth
                        next_frontier.append(owner)
            frontier = next_frontier
        return levels

    # -- queries -------------------------------------------------------------------

    def eclass_ids(self) -> Iterator[int]:
        return iter(list(self.classes.keys()))

    def nodes_of(self, eclass_id: int) -> Set[ENode]:
        return self.classes[self.find(eclass_id)].nodes

    def nodes_by_head(self) -> Dict[Head, List[Tuple[int, ENode]]]:
        """Index of (class, node) by head, over canonical classes.

        This builds a fresh snapshot on every call; it exists for the
        legacy matcher and for debugging.  The incremental engine uses
        :meth:`head_entries` instead.
        """
        index: Dict[Head, List[Tuple[int, ENode]]] = defaultdict(list)
        for eclass_id, eclass in self.classes.items():
            for node in eclass.nodes:
                index[node.head].append((eclass_id, node))
        return index

    def literal_value(self, eclass_id: int) -> Optional[object]:
        """The payload if this class contains a literal node."""
        for node in self.nodes_of(eclass_id):
            if isinstance(node.head, tuple):
                return node.head[1]
        return None

    def add_literal(self, kind: str, value: object) -> int:
        return self.add_node(ENode((kind, value), ()))

    def num_classes(self) -> int:
        return len(self.classes)

    def num_nodes(self) -> int:
        return sum(len(c.nodes) for c in self.classes.values())

    def equivalent(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)
