"""An egg-style E-graph: hashcons + union-find + deferred rebuilding.

Follows Willsey et al. (POPL'21): ``union`` only merges the union-find and
defers congruence repair to ``rebuild``, which processes a worklist of
touched classes.  Relations (egglog-style Datalog facts over e-classes)
live alongside the term structure and are re-canonicalized on rebuild.

A minimal saturate-and-extract session — insert a term, rewrite
``1 + 1`` to ``2`` until nothing changes, and extract the cheapest
equivalent form:

>>> from repro.eqsat import (
...     EGraph, I, T, extract_best, parse_one, parse_pattern, rewrite,
...     saturate,
... )
>>> eg = EGraph()
>>> root = eg.add_term(T("Mul", T("Add", I(1), I(1)), I(3)))
>>> fold = rewrite(
...     "fold-1+1",
...     parse_pattern(parse_one("(Add 1 1)")),
...     parse_pattern(parse_one("2")),
... )
>>> stats = saturate(eg, [fold])
>>> eg.lookup_term(T("Mul", I(2), I(3))) == eg.find(root)
True
>>> print(extract_best(eg, root))
(Mul 2 3)
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .language import ENode, Head, Term

#: Literal payloads are interned by equality, but NaN compares unequal to
#: everything including itself — a fresh NaN payload would never hit the
#: hashcons and equal literals would land in distinct classes.  All NaN
#: payloads are therefore replaced by this single object; tuple equality
#: short-circuits on identity, so lookups and inserts agree.
_CANONICAL_NAN = float("nan")


def _canon_head(head: Head) -> Head:
    """Canonicalize a node head's literal payload (NaN normalization)."""
    if isinstance(head, tuple):
        value = head[1]
        if isinstance(value, float) and value != value:
            return (head[0], _CANONICAL_NAN)
    return head


class EClass:
    """One equivalence class of e-nodes."""

    __slots__ = ("id", "nodes", "parents")

    def __init__(self, eclass_id: int) -> None:
        self.id = eclass_id
        self.nodes: Set[ENode] = set()
        #: e-nodes that reference this class, with the class they live in
        self.parents: List[Tuple[ENode, int]] = []


class EGraph:
    """The e-graph, including egglog-style relations."""

    def __init__(self) -> None:
        self._parent: List[int] = []
        self.classes: Dict[int, EClass] = {}
        self.hashcons: Dict[ENode, int] = {}
        self.worklist: List[int] = []
        #: relation name -> set of canonical argument tuples
        self.relations: Dict[str, Set[Tuple[object, ...]]] = defaultdict(set)
        #: bumps on every change; rules sets use it to detect saturation
        self.version = 0

    # -- union-find ----------------------------------------------------------

    def find(self, eclass_id: int) -> int:
        root = eclass_id
        while self._parent[root] != root:
            root = self._parent[root]
        # path compression
        while self._parent[eclass_id] != root:
            self._parent[eclass_id], eclass_id = root, self._parent[eclass_id]
        return root

    def _new_class(self) -> EClass:
        eclass_id = len(self._parent)
        self._parent.append(eclass_id)
        eclass = EClass(eclass_id)
        self.classes[eclass_id] = eclass
        return eclass

    # -- insertion -----------------------------------------------------------

    def add_node(self, node: ENode) -> int:
        node = ENode(_canon_head(node.head), node.args).canonicalize(self.find)
        existing = self.hashcons.get(node)
        if existing is not None:
            return self.find(existing)
        eclass = self._new_class()
        eclass.nodes.add(node)
        self.hashcons[node] = eclass.id
        for child in node.args:
            self.classes[self.find(child)].parents.append((node, eclass.id))
        self.version += 1
        return eclass.id

    def add_term(self, term: Term) -> int:
        args = tuple(self.add_term(a) for a in term.args)
        return self.add_node(ENode(term.head, args))

    def lookup_term(self, term: Term) -> Optional[int]:
        """The e-class of a term if it is present, else None.

        Literal terms are a base case: their payload lives in the head
        (canonicalized, see :func:`_canon_head`), not in child e-classes,
        so the recursion stops instead of descending into the payload.
        """
        if term.is_literal():
            found = self.hashcons.get(ENode(_canon_head(term.head), ()))
            return self.find(found) if found is not None else None
        args = []
        for a in term.args:
            child = self.lookup_term(a)
            if child is None:
                return None
            args.append(child)
        node = ENode(term.head, tuple(args)).canonicalize(self.find)
        found = self.hashcons.get(node)
        return self.find(found) if found is not None else None

    # -- union + rebuild -------------------------------------------------------

    def union(self, a: int, b: int) -> bool:
        a, b = self.find(a), self.find(b)
        if a == b:
            return False
        # merge smaller into larger to bound parent-list copying
        if len(self.classes[a].parents) < len(self.classes[b].parents):
            a, b = b, a
        self._parent[b] = a
        class_a, class_b = self.classes[a], self.classes[b]
        class_a.nodes |= class_b.nodes
        class_a.parents.extend(class_b.parents)
        del self.classes[b]
        self.worklist.append(a)
        self.version += 1
        return True

    def rebuild(self) -> None:
        """Restore the congruence invariant after a batch of unions."""
        while self.worklist:
            todo = {self.find(c) for c in self.worklist}
            self.worklist.clear()
            for eclass_id in todo:
                self._repair(eclass_id)
        self._canonicalize_relations()

    def _repair(self, eclass_id: int) -> None:
        eclass = self.classes.get(self.find(eclass_id))
        if eclass is None:
            return
        # re-canonicalize every parent node; collisions imply congruence
        new_parents: Dict[ENode, int] = {}
        for node, owner in eclass.parents:
            self.hashcons.pop(node, None)
            node = node.canonicalize(self.find)
            owner = self.find(owner)
            if node in new_parents:
                self.union(owner, new_parents[node])
                owner = self.find(owner)
            new_parents[node] = owner
            self.hashcons[node] = owner
        eclass = self.classes.get(self.find(eclass_id))
        if eclass is not None:
            eclass.parents = [
                (node, self.find(owner)) for node, owner in new_parents.items()
            ]
            eclass.nodes = {n.canonicalize(self.find) for n in eclass.nodes}

    def _canonicalize_relations(self) -> None:
        for name, tuples in self.relations.items():
            canon = set()
            for row in tuples:
                canon.add(
                    tuple(
                        self.find(v) if isinstance(v, int) else v for v in row
                    )
                )
            self.relations[name] = canon

    # -- relations ---------------------------------------------------------------

    def assert_fact(self, name: str, row: Tuple[int, ...]) -> bool:
        canon = tuple(self.find(v) if isinstance(v, int) else v for v in row)
        if canon in self.relations[name]:
            return False
        self.relations[name].add(canon)
        self.version += 1
        return True

    def facts(self, name: str) -> Set[Tuple[object, ...]]:
        return self.relations.get(name, set())

    # -- queries -------------------------------------------------------------------

    def eclass_ids(self) -> Iterator[int]:
        return iter(list(self.classes.keys()))

    def nodes_of(self, eclass_id: int) -> Set[ENode]:
        return self.classes[self.find(eclass_id)].nodes

    def nodes_by_head(self) -> Dict[Head, List[Tuple[int, ENode]]]:
        """Index of (class, node) by head, over canonical classes."""
        index: Dict[Head, List[Tuple[int, ENode]]] = defaultdict(list)
        for eclass_id, eclass in self.classes.items():
            for node in eclass.nodes:
                index[node.head].append((eclass_id, node))
        return index

    def literal_value(self, eclass_id: int) -> Optional[object]:
        """The payload if this class contains a literal node."""
        for node in self.nodes_of(eclass_id):
            if isinstance(node.head, tuple):
                return node.head[1]
        return None

    def add_literal(self, kind: str, value: object) -> int:
        return self.add_node(ENode((kind, value), ()))

    def num_classes(self) -> int:
        return len(self.classes)

    def num_nodes(self) -> int:
        return sum(len(c.nodes) for c in self.classes.values())

    def equivalent(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)
