"""Rule schedules (paper §III-D.2).

HARDBOILED runs a fixed number of iterations of the axiomatic,
application-specific, and lowering rules, interleaved with running the
*supporting* rules (type/shape analyses) to fixpoint — supporting rules
always saturate in finitely many steps.

``run_phased`` keeps one persistent :class:`~.rules.RuleEngine` per rule
set across the whole schedule, so after the first outer iteration the
supporting fixpoint and the main pass are delta passes over whatever the
other phase changed, instead of full re-matches of the entire e-graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .egraph import EGraph
from .rules import BackoffScheduler, Rule, RuleEngine, RunStats


@dataclass
class ScheduleStats:
    """Aggregated statistics over a phased run."""

    outer_iterations: int = 0
    main_stats: List[RunStats] = field(default_factory=list)
    supporting_stats: List[RunStats] = field(default_factory=list)
    seconds: float = 0.0
    saturated: bool = False

    @property
    def total_matches(self) -> int:
        return sum(s.total_matches for s in self.main_stats) + sum(
            s.total_matches for s in self.supporting_stats
        )

    def _sum(self, attr: str) -> float:
        return sum(getattr(s, attr) for s in self.main_stats) + sum(
            getattr(s, attr) for s in self.supporting_stats
        )

    @property
    def match_seconds(self) -> float:
        return self._sum("match_seconds")

    @property
    def apply_seconds(self) -> float:
        return self._sum("apply_seconds")

    @property
    def rebuild_seconds(self) -> float:
        return self._sum("rebuild_seconds")

    @property
    def delta_rounds(self) -> int:
        return int(self._sum("delta_rounds"))

    @property
    def full_rounds(self) -> int:
        return int(self._sum("full_rounds"))

    def profile(self) -> dict:
        """Timing breakdown for benchmark reports."""
        return {
            "total_s": self.seconds,
            "match_s": self.match_seconds,
            "apply_s": self.apply_seconds,
            "rebuild_s": self.rebuild_seconds,
            "delta_rounds": self.delta_rounds,
            "full_rounds": self.full_rounds,
            "matches": self.total_matches,
        }


def run_phased(
    egraph: EGraph,
    main_rules: Sequence[Rule],
    supporting_rules: Sequence[Rule],
    iterations: int = 4,
    saturate_limit: int = 64,
    scheduler: Optional[BackoffScheduler] = None,
) -> ScheduleStats:
    """The paper's schedule: N x (saturate supporting; run main once)."""
    stats = ScheduleStats()
    start = time.perf_counter()
    main_engine = RuleEngine(egraph, main_rules)
    supporting_engine = RuleEngine(
        egraph, supporting_rules, scheduler=scheduler or BackoffScheduler()
    )
    for _ in range(iterations):
        stats.outer_iterations += 1
        stats.supporting_stats.append(supporting_engine.run(saturate_limit))
        version_before = egraph.version
        stats.main_stats.append(main_engine.run(1))
        if egraph.version == version_before:
            stats.saturated = True
            break
    # a final supporting pass so analyses cover the last main-rule output
    stats.supporting_stats.append(supporting_engine.run(saturate_limit))
    stats.seconds = time.perf_counter() - start
    return stats
