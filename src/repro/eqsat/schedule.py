"""Rule schedules (paper §III-D.2).

HARDBOILED runs a fixed number of iterations of the axiomatic,
application-specific, and lowering rules, interleaved with running the
*supporting* rules (type/shape analyses) to fixpoint — supporting rules
always saturate in finitely many steps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Sequence

from .egraph import EGraph
from .rules import Rule, RunStats, run_rules, saturate


@dataclass
class ScheduleStats:
    """Aggregated statistics over a phased run."""

    outer_iterations: int = 0
    main_stats: List[RunStats] = field(default_factory=list)
    supporting_stats: List[RunStats] = field(default_factory=list)
    seconds: float = 0.0
    saturated: bool = False

    @property
    def total_matches(self) -> int:
        return sum(s.total_matches for s in self.main_stats) + sum(
            s.total_matches for s in self.supporting_stats
        )


def run_phased(
    egraph: EGraph,
    main_rules: Sequence[Rule],
    supporting_rules: Sequence[Rule],
    iterations: int = 4,
    saturate_limit: int = 64,
) -> ScheduleStats:
    """The paper's schedule: N x (saturate supporting; run main once)."""
    stats = ScheduleStats()
    start = time.perf_counter()
    for _ in range(iterations):
        stats.outer_iterations += 1
        stats.supporting_stats.append(
            saturate(egraph, supporting_rules, max_iterations=saturate_limit)
        )
        version_before = egraph.version
        stats.main_stats.append(run_rules(egraph, main_rules, iterations=1))
        if egraph.version == version_before:
            stats.saturated = True
            break
    # a final supporting pass so analyses cover the last main-rule output
    stats.supporting_stats.append(
        saturate(egraph, supporting_rules, max_iterations=saturate_limit)
    )
    stats.seconds = time.perf_counter() - start
    return stats
