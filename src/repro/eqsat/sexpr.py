"""A tiny s-expression reader for egglog-style rule text."""

from __future__ import annotations

from typing import List, Union

SExpr = Union[int, float, str, List["SExpr"]]


def tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c in "()":
            tokens.append(c)
            i += 1
        elif c == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif c.isspace():
            i += 1
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 1
            if j >= n:
                raise ValueError("unterminated string literal")
            tokens.append(text[i : j + 1])
            i = j + 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in '();"':
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def _atom(token: str) -> SExpr:
    if token.startswith('"'):
        return token  # keep quotes; parse_pattern strips them
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def parse_all(text: str) -> List[SExpr]:
    """Parse every top-level s-expression in ``text``."""
    tokens = tokenize(text)
    pos = 0

    def parse_one() -> SExpr:
        nonlocal pos
        token = tokens[pos]
        if token == "(":
            pos += 1
            items: List[SExpr] = []
            while pos < len(tokens) and tokens[pos] != ")":
                items.append(parse_one())
            if pos >= len(tokens):
                raise ValueError("unbalanced parentheses")
            pos += 1
            return items
        if token == ")":
            raise ValueError("unexpected ')'")
        pos += 1
        return _atom(token)

    out: List[SExpr] = []
    while pos < len(tokens):
        out.append(parse_one())
    return out


def parse_one(text: str) -> SExpr:
    exprs = parse_all(text)
    if len(exprs) != 1:
        raise ValueError(f"expected one s-expression, got {len(exprs)}")
    return exprs[0]
