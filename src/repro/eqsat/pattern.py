"""Patterns over the EqSat term language.

Grammar (mirroring egglog):

* ``PVar("x")`` — a pattern variable, binds an e-class.
* ``PLit("i64", 5)`` — a literal, matches only that literal's e-class.
* ``PApp("Add", (p1, p2))`` — an operator pattern.

Primitive heads (``*``, ``+``, ``-``, ``/``, ``%``) never match graph
structure; they are *computed* over bound literal values when a pattern is
instantiated (action side) or evaluated (guard side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

PRIMITIVE_OPS = {"*", "+", "-", "/", "%"}


@dataclass(frozen=True)
class PVar:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PLit:
    kind: str
    value: object

    def __str__(self) -> str:
        return repr(self.value) if self.kind == "str" else str(self.value)


@dataclass(frozen=True)
class PApp:
    head: str
    args: Tuple["Pattern", ...]

    def __str__(self) -> str:
        if not self.args:
            return f"({self.head})"
        return f"({self.head} {' '.join(str(a) for a in self.args)})"


Pattern = Union[PVar, PLit, PApp]


def pattern_vars(p: Pattern, acc=None) -> set:
    if acc is None:
        acc = set()
    if isinstance(p, PVar):
        acc.add(p.name)
    elif isinstance(p, PApp):
        for a in p.args:
            pattern_vars(a, acc)
    return acc


def pattern_depth(p: Pattern) -> int:
    """Structural nesting depth: 0 for variables/literals, 1 + deepest
    argument for applications.  The delta matcher uses it to bound how
    far above a changed e-class a new match root can sit."""
    if isinstance(p, PApp):
        return 1 + max((pattern_depth(a) for a in p.args), default=0)
    return 0


def pattern_var_depths(p: Pattern, base: int = 0, acc=None) -> dict:
    """Deepest occurrence depth (levels below the pattern root, offset
    by ``base``) for every variable in the pattern."""
    if acc is None:
        acc = {}
    if isinstance(p, PVar):
        if base > acc.get(p.name, -1):
            acc[p.name] = base
    elif isinstance(p, PApp):
        for a in p.args:
            pattern_var_depths(a, base + 1, acc)
    return acc


def parse_pattern(sexpr) -> Pattern:
    """Build a pattern from a parsed s-expression (see :mod:`.sexpr`)."""
    if isinstance(sexpr, int):
        return PLit("i64", sexpr)
    if isinstance(sexpr, float):
        return PLit("f64", sexpr)
    if isinstance(sexpr, str):
        if sexpr.startswith('"') and sexpr.endswith('"'):
            return PLit("str", sexpr[1:-1])
        return PVar(sexpr)
    if isinstance(sexpr, list):
        if not sexpr:
            raise ValueError("empty pattern")
        head = sexpr[0]
        if not isinstance(head, str):
            raise ValueError(f"pattern head must be a symbol: {sexpr}")
        return PApp(head, tuple(parse_pattern(a) for a in sexpr[1:]))
    raise TypeError(f"cannot parse pattern from {sexpr!r}")
