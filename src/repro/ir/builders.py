"""Smart constructors for IR expressions.

These perform type promotion (inserting casts/broadcasts) and fold
constants at construction time, the way Halide's ``IROperator`` helpers
do.  Heavier restructuring (the pattern-obscuring rewrites) lives in
:mod:`repro.lowering.simplify`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Union

from .expr import (
    EQ,
    GE,
    GT,
    LE,
    LT,
    NE,
    Add,
    And,
    Broadcast,
    Call,
    CallType,
    Cast,
    Div,
    Expr,
    FloatImm,
    IntImm,
    Let,
    Load,
    Max,
    Min,
    Mod,
    Mul,
    Not,
    Or,
    Ramp,
    Select,
    Sub,
    Variable,
    VectorReduce,
)
from .types import BOOL, DataType, Float, Int, promote


def const(value: Union[int, float, bool], dtype: DataType) -> Expr:
    """An immediate of the given type (broadcast if ``dtype`` is vector)."""
    scalar_t = dtype.element_of()
    if scalar_t.is_float():
        imm: Expr = FloatImm(float(value), scalar_t)
    else:
        imm = IntImm(int(value), scalar_t)
    if dtype.lanes > 1:
        return Broadcast(imm, dtype.lanes)
    return imm


def wrap(value: object, hint: DataType) -> Expr:
    """Coerce a Python scalar into an immediate; pass Exprs through.

    Frontend objects exposing ``to_expr`` (Var, RDom, FuncRef) coerce too,
    so mixed ``Expr <op> Var`` arithmetic works in either order.
    """
    if isinstance(value, Expr):
        return value
    if hasattr(value, "to_expr"):
        return value.to_expr()
    if isinstance(value, bool):
        return IntImm(int(value), BOOL)
    if isinstance(value, int):
        if hint.is_float():
            return IntImm(value, Int(32))
        return IntImm(value, hint.element_of())
    if isinstance(value, float):
        if hint.is_float():
            return FloatImm(value, hint.element_of())
        return FloatImm(value, Float(32))
    raise TypeError(f"cannot convert {value!r} to an IR expression")


def is_const(e: Expr) -> bool:
    return isinstance(e, (IntImm, FloatImm)) or (
        isinstance(e, Broadcast) and is_const(e.value)
    )


def const_value(e: Expr):
    """The Python value of a constant expression (scalar or broadcast)."""
    if isinstance(e, (IntImm, FloatImm)):
        return e.value
    if isinstance(e, Broadcast):
        return const_value(e.value)
    raise ValueError(f"not a constant: {e}")


def as_int(e: Expr) -> int:
    v = const_value(e)
    if isinstance(v, float) and not v.is_integer():
        raise ValueError(f"constant {v} is not integral")
    return int(v)


def match_lanes(a: Expr, b: Expr):
    """Broadcast the scalar side so both expressions have equal lanes."""
    if a.type.lanes == b.type.lanes:
        return a, b
    if a.type.lanes == 1:
        return Broadcast(a, b.type.lanes), b
    if b.type.lanes == 1:
        return a, Broadcast(b, a.type.lanes)
    raise ValueError(f"lane mismatch: {a.type} vs {b.type}")


def match_types(a: Expr, b: Expr):
    """Promote both operands to a common type (cast + broadcast)."""
    a, b = match_lanes(a, b)
    target = promote(a.type, b.type)
    a = cast(target, a)
    b = cast(target, b)
    return a, b


def cast(dtype: DataType, value: Expr) -> Expr:
    """Cast with lane auto-broadcast and constant folding."""
    if value.type.lanes == 1 and dtype.lanes > 1:
        return Broadcast(cast(dtype.element_of(), value), dtype.lanes)
    if value.type == dtype:
        return value
    if isinstance(value, IntImm) and dtype.is_scalar():
        if dtype.is_float():
            return FloatImm(float(value.value), dtype)
        return IntImm(int(value.value), dtype)
    if isinstance(value, FloatImm) and dtype.is_scalar():
        if dtype.is_float():
            return FloatImm(value.value, dtype)
        return IntImm(int(value.value), dtype)
    return Cast(dtype, value)


_PY_OPS: Dict[str, Callable] = {
    "add": lambda x, y: x + y,
    "sub": lambda x, y: x - y,
    "mul": lambda x, y: x * y,
    "min": min,
    "max": max,
}


def _fold_or_build(node_cls, op: str, a: Expr, b: Expr) -> Expr:
    a, b = match_types(a, b)
    if is_const(a) and is_const(b) and op in _PY_OPS:
        result = _PY_OPS[op](const_value(a), const_value(b))
        return const(result, a.type)
    return node_cls(a, b)


def make_add(a: Expr, b: Expr) -> Expr:
    a, b = match_types(a, b)
    if is_const(b) and const_value(b) == 0:
        return a
    if is_const(a) and const_value(a) == 0:
        return b
    return _fold_or_build(Add, "add", a, b)


def make_sub(a: Expr, b: Expr) -> Expr:
    a, b = match_types(a, b)
    if is_const(b) and const_value(b) == 0:
        return a
    return _fold_or_build(Sub, "sub", a, b)


def make_mul(a: Expr, b: Expr) -> Expr:
    a, b = match_types(a, b)
    for x, y in ((a, b), (b, a)):
        if is_const(y):
            v = const_value(y)
            if v == 1:
                return x
            if v == 0:
                return const(0, x.type)
    return _fold_or_build(Mul, "mul", a, b)


def make_div(a: Expr, b: Expr) -> Expr:
    a, b = match_types(a, b)
    if is_const(b) and const_value(b) == 1:
        return a
    if is_const(a) and is_const(b) and const_value(b) != 0:
        va, vb = const_value(a), const_value(b)
        if a.type.is_float():
            return const(va / vb, a.type)
        # Halide integer division rounds towards negative infinity
        return const(va // vb, a.type)
    return Div(a, b)


def make_mod(a: Expr, b: Expr) -> Expr:
    a, b = match_types(a, b)
    if is_const(a) and is_const(b) and const_value(b) != 0:
        va, vb = const_value(a), const_value(b)
        if a.type.is_float():
            return const(math.fmod(va, vb), a.type)
        return const(va % vb, a.type)  # Euclidean, like Halide
    return Mod(a, b)


def make_min(a: Expr, b: Expr) -> Expr:
    if a == b:
        return a
    return _fold_or_build(Min, "min", a, b)


def make_max(a: Expr, b: Expr) -> Expr:
    if a == b:
        return a
    return _fold_or_build(Max, "max", a, b)


_CMP_PY = {
    "eq": lambda x, y: x == y,
    "ne": lambda x, y: x != y,
    "lt": lambda x, y: x < y,
    "le": lambda x, y: x <= y,
    "gt": lambda x, y: x > y,
    "ge": lambda x, y: x >= y,
}
_CMP_NODE = {"eq": EQ, "ne": NE, "lt": LT, "le": LE, "gt": GT, "ge": GE}


def _make_cmp(op: str, a: Expr, b: Expr) -> Expr:
    a, b = match_types(a, b)
    if is_const(a) and is_const(b):
        result = _CMP_PY[op](const_value(a), const_value(b))
        return const(result, BOOL.with_lanes(a.type.lanes))
    return _CMP_NODE[op](a, b)


BINARY_BUILDERS: Dict[str, Callable[[Expr, Expr], Expr]] = {
    "add": make_add,
    "sub": make_sub,
    "mul": make_mul,
    "div": make_div,
    "mod": make_mod,
    "min": make_min,
    "max": make_max,
    **{op: (lambda op: (lambda a, b: _make_cmp(op, a, b)))(op) for op in _CMP_PY},
}


def make_select(cond: Expr, t: Expr, f: Expr) -> Expr:
    t, f = match_types(t, f)
    if is_const(cond):
        return t if const_value(cond) else f
    return Select(cond, t, f)


def make_ramp(base: Expr, stride: Expr, count: int) -> Expr:
    if count == 1:
        return base
    base, stride = match_types(base, stride)
    return Ramp(base, stride, count)


def make_broadcast(value: Expr, count: int) -> Expr:
    if count == 1:
        return value
    return Broadcast(value, count)


def vector_reduce_add(value: Expr, result_lanes: int) -> Expr:
    if value.type.lanes == result_lanes:
        return value
    return VectorReduce("add", value, result_lanes)


def intrinsic(dtype: DataType, name: str, *args: Expr) -> Call:
    return Call(dtype, name, tuple(args), CallType.INTRINSIC)
