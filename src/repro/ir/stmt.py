"""Statement nodes of the Halide-like IR."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .expr import Expr
from .types import DataType


class ForKind(enum.Enum):
    """Execution strategy of a loop dimension."""

    SERIAL = "for"
    PARALLEL = "parallel"
    VECTORIZED = "vectorized"
    UNROLLED = "unrolled"
    GPU_BLOCK = "gpu_block"
    GPU_THREAD = "gpu_thread"
    GPU_LANE = "gpu_lane"  # warp lane loop used for WMMA statements


class MemoryType(enum.Enum):
    """Where a buffer lives.

    ``AMX_TILE``, ``WMMA_ACCUMULATOR``, and ``DP4A_ACCUMULATOR`` are the
    scheduling hooks the user pulls (via ``Func.store_in``) to request
    tensor-accelerator storage — the trigger for HARDBOILED instruction
    selection.
    """

    AUTO = "auto"
    HEAP = "heap"
    STACK = "stack"
    REGISTER = "register"
    GPU_SHARED = "gpu_shared"
    AMX_TILE = "amx_tile"
    WMMA_ACCUMULATOR = "wmma_accumulator"
    DP4A_ACCUMULATOR = "dp4a_accumulator"

    def is_accelerator(self) -> bool:
        return self in (
            MemoryType.AMX_TILE,
            MemoryType.WMMA_ACCUMULATOR,
            MemoryType.DP4A_ACCUMULATOR,
        )


@dataclass(frozen=True)
class Stmt:
    """Base class for all IR statements."""


@dataclass(frozen=True)
class Store(Stmt):
    """``name[index] = value`` — a (possibly vector) store."""

    name: str
    index: Expr
    value: Expr

    def __post_init__(self) -> None:
        if self.index.type.lanes != self.value.type.lanes:
            raise ValueError(
                f"store lane mismatch into {self.name!r}: index "
                f"{self.index.type.lanes} lanes, value "
                f"{self.value.type.lanes} lanes"
            )


@dataclass(frozen=True)
class For(Stmt):
    """A loop over ``[min_expr, min_expr + extent)``."""

    name: str
    min_expr: Expr
    extent: Expr
    kind: ForKind
    body: Stmt


@dataclass(frozen=True)
class Block(Stmt):
    """A sequence of statements."""

    stmts: Tuple[Stmt, ...]

    @staticmethod
    def make(stmts) -> Stmt:
        """Build a block, flattening nested blocks and dropping no-ops."""
        flat = []
        for s in stmts:
            if s is None:
                continue
            if isinstance(s, Block):
                flat.extend(s.stmts)
            else:
                flat.append(s)
        if len(flat) == 1:
            return flat[0]
        return Block(tuple(flat))


@dataclass(frozen=True)
class Allocate(Stmt):
    """Allocate a buffer for the duration of ``body``."""

    name: str
    dtype: DataType
    extents: Tuple[Expr, ...]
    memory_type: MemoryType
    body: Stmt


@dataclass(frozen=True)
class LetStmt(Stmt):
    name: str
    value: Expr
    body: Stmt


@dataclass(frozen=True)
class IfThenElse(Stmt):
    condition: Expr
    then_case: Stmt
    else_case: Optional[Stmt] = None


@dataclass(frozen=True)
class Evaluate(Stmt):
    """Evaluate an expression for its side effects (e.g. ``tile_store``)."""

    value: Expr


@dataclass(frozen=True)
class ProducerConsumer(Stmt):
    """Marks the region that computes (produces) a Func's buffer."""

    name: str
    is_producer: bool
    body: Stmt


@dataclass(frozen=True)
class Provide(Stmt):
    """Pre-flattening store: ``name(args...) = value``.

    Lowering emits Provide nodes while loop nests are being built; storage
    flattening replaces them with flat-indexed :class:`Store` nodes.
    """

    name: str
    args: Tuple[Expr, ...]
    value: Expr


#: Child statement/expression attributes for generic traversal.
STMT_CHILDREN = {
    Store: (("index", "value"), ()),
    Provide: (("args", "value"), ()),
    For: (("min_expr", "extent"), ("body",)),
    Block: ((), ("stmts",)),
    Allocate: (("extents",), ("body",)),
    LetStmt: (("value",), ("body",)),
    IfThenElse: (("condition",), ("then_case", "else_case")),
    Evaluate: (("value",), ()),
    ProducerConsumer: ((), ("body",)),
}
