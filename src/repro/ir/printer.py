"""Terse pretty-printer matching the paper's notation.

A broadcast of ``v`` by ``n`` prints as ``xn(v)``; ramps print as
``ramp(base, stride, count)``; loads as ``name[index]`` — the format used
throughout the paper's IR listings (Figs. 2 and 3).
"""

from __future__ import annotations

from .expr import (
    Add,
    And,
    Broadcast,
    Call,
    Cast,
    Div,
    EQ,
    Expr,
    FloatImm,
    GE,
    GT,
    IntImm,
    LE,
    LT,
    Let,
    Load,
    Max,
    Min,
    Mod,
    Mul,
    NE,
    Not,
    Or,
    Ramp,
    Select,
    Shuffle,
    StringImm,
    Sub,
    Variable,
    VectorReduce,
)
from .stmt import (
    Allocate,
    Block,
    Evaluate,
    For,
    IfThenElse,
    LetStmt,
    ProducerConsumer,
    Provide,
    Stmt,
    Store,
)

_BINOP_SYMBOL = {
    Add: "+",
    Sub: "-",
    Mul: "*",
    Div: "/",
    Mod: "%",
    EQ: "==",
    NE: "!=",
    LT: "<",
    LE: "<=",
    GT: ">",
    GE: ">=",
    And: "&&",
    Or: "||",
}


def print_expr(e: Expr) -> str:
    if isinstance(e, IntImm):
        return str(e.value)
    if isinstance(e, FloatImm):
        value = f"{e.value:g}"
        if "." not in value and "e" not in value and "inf" not in value:
            value += ".0"
        return f"{value}f"
    if isinstance(e, StringImm):
        return repr(e.value)
    if isinstance(e, Variable):
        return e.name
    if isinstance(e, Cast):
        return f"cast<{e.dtype}>({print_expr(e.value)})"
    if isinstance(e, Broadcast):
        return f"x{e.count}({print_expr(e.value)})"
    if isinstance(e, Ramp):
        return (
            f"ramp({print_expr(e.base)}, {print_expr(e.stride)}, {e.count})"
        )
    if isinstance(e, VectorReduce):
        return (
            f"({e.type})vector_reduce_{e.op}({print_expr(e.value)}, "
            f"{e.result_lanes})"
        )
    if isinstance(e, Load):
        return f"{e.name}[{print_expr(e.index)}]"
    if isinstance(e, Call):
        args = ", ".join(print_expr(a) for a in e.args)
        return f"{e.name}({args})"
    if isinstance(e, Select):
        return (
            f"select({print_expr(e.condition)}, {print_expr(e.true_value)},"
            f" {print_expr(e.false_value)})"
        )
    if isinstance(e, Not):
        return f"!({print_expr(e.value)})"
    if isinstance(e, Let):
        return (
            f"(let {e.name} = {print_expr(e.value)} in {print_expr(e.body)})"
        )
    if isinstance(e, Shuffle):
        vecs = ", ".join(print_expr(v) for v in e.vectors)
        if len(e.indices) > 16:
            idx = ", ".join(map(str, e.indices[:16])) + ", ..."
        else:
            idx = ", ".join(map(str, e.indices))
        return f"shuffle([{vecs}], [{idx}])"
    if isinstance(e, Min):
        return f"min({print_expr(e.a)}, {print_expr(e.b)})"
    if isinstance(e, Max):
        return f"max({print_expr(e.a)}, {print_expr(e.b)})"
    symbol = _BINOP_SYMBOL.get(type(e))
    if symbol is not None:
        return f"({print_expr(e.a)} {symbol} {print_expr(e.b)})"
    raise NotImplementedError(f"cannot print {type(e).__name__}")


def print_stmt(s: Stmt, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(s, Store):
        return f"{pad}{s.name}[{print_expr(s.index)}] = {print_expr(s.value)}"
    if isinstance(s, Provide):
        args = ", ".join(print_expr(a) for a in s.args)
        return f"{pad}{s.name}({args}) = {print_expr(s.value)}"
    if isinstance(s, Evaluate):
        return f"{pad}{print_expr(s.value)}"
    if isinstance(s, For):
        header = (
            f"{pad}{s.kind.value} {s.name} in "
            f"[{print_expr(s.min_expr)}, {print_expr(s.min_expr)} + "
            f"{print_expr(s.extent)}):"
        )
        return header + "\n" + print_stmt(s.body, indent + 1)
    if isinstance(s, Block):
        return "\n".join(print_stmt(part, indent) for part in s.stmts)
    if isinstance(s, Allocate):
        extents = " * ".join(print_expr(e) for e in s.extents)
        header = (
            f"{pad}allocate {s.name}[{s.dtype} * {extents}]"
            f" in {s.memory_type.value}"
        )
        return header + "\n" + print_stmt(s.body, indent)
    if isinstance(s, LetStmt):
        return (
            f"{pad}let {s.name} = {print_expr(s.value)}\n"
            + print_stmt(s.body, indent)
        )
    if isinstance(s, IfThenElse):
        text = f"{pad}if {print_expr(s.condition)}:\n" + print_stmt(
            s.then_case, indent + 1
        )
        if s.else_case is not None:
            text += f"\n{pad}else:\n" + print_stmt(s.else_case, indent + 1)
        return text
    if isinstance(s, ProducerConsumer):
        tag = "produce" if s.is_producer else "consume"
        return f"{pad}{tag} {s.name}:\n" + print_stmt(s.body, indent + 1)
    raise NotImplementedError(f"cannot print {type(s).__name__}")


def dump(node) -> str:
    """Print an expression or statement tree."""
    if isinstance(node, Expr):
        return print_expr(node)
    return print_stmt(node)
