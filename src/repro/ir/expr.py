"""Expression nodes of the Halide-like IR.

The vector trio that HARDBOILED builds on lives here:

* :class:`Ramp` — ``ramp(base, stride, n)`` concatenates the vectors
  ``base, base + stride, ..., base + (n-1)*stride``.  When ``base`` and
  ``stride`` are themselves vectors this encodes a *nested* (2-D) pattern.
* :class:`Broadcast` — ``xN(v)`` concatenates N copies of ``v`` (a ramp
  with stride zero).
* :class:`VectorReduce` — sums fixed-size groups of adjacent lanes,
  producing a smaller vector; appears when a reduction dimension is
  vectorized under ``atomic()``.

All nodes are immutable; structural equality and hashing come from the
dataclass machinery so expressions can be used as dict keys (the e-graph
hashconses separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

from .types import BOOL, DataType, Float, Int, TypeCode, promote

ScalarValue = Union[int, float, bool]


@dataclass(frozen=True)
class Expr:
    """Base class for all IR expressions."""

    @property
    def type(self) -> DataType:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def lanes(self) -> int:
        return self.type.lanes

    # -- operator sugar (delegates to builders for folding/promotion) ------

    def _bin(self, op: str, other: object, reverse: bool = False):
        from . import builders

        other_expr = builders.wrap(other, self.type.element_of())
        a, b = (other_expr, self) if reverse else (self, other_expr)
        return builders.BINARY_BUILDERS[op](a, b)

    def __add__(self, other):
        return self._bin("add", other)

    def __radd__(self, other):
        return self._bin("add", other, reverse=True)

    def __sub__(self, other):
        return self._bin("sub", other)

    def __rsub__(self, other):
        return self._bin("sub", other, reverse=True)

    def __mul__(self, other):
        return self._bin("mul", other)

    def __rmul__(self, other):
        return self._bin("mul", other, reverse=True)

    def __truediv__(self, other):
        return self._bin("div", other)

    def __rtruediv__(self, other):
        return self._bin("div", other, reverse=True)

    def __floordiv__(self, other):
        return self._bin("div", other)

    def __rfloordiv__(self, other):
        return self._bin("div", other, reverse=True)

    def __mod__(self, other):
        return self._bin("mod", other)

    def __rmod__(self, other):
        return self._bin("mod", other, reverse=True)

    def __neg__(self):
        from . import builders

        return builders.make_sub(builders.const(0, self.type), self)

    def __lt__(self, other):
        return self._bin("lt", other)

    def __le__(self, other):
        return self._bin("le", other)

    def __gt__(self, other):
        return self._bin("gt", other)

    def __ge__(self, other):
        return self._bin("ge", other)

    def eq(self, other):
        """Pointwise equality (``==`` is reserved for structural equality)."""
        return self._bin("eq", other)

    def ne(self, other):
        return self._bin("ne", other)


@dataclass(frozen=True)
class IntImm(Expr):
    """An integer immediate of a given (possibly unsigned) type."""

    value: int
    dtype: DataType = field(default=Int(32))

    @property
    def type(self) -> DataType:
        return self.dtype


@dataclass(frozen=True)
class FloatImm(Expr):
    """A floating-point immediate (covers float16/32/64 and bfloat16)."""

    value: float
    dtype: DataType = field(default=Float(32))

    @property
    def type(self) -> DataType:
        return self.dtype


@dataclass(frozen=True)
class StringImm(Expr):
    """A string immediate (used for intrinsic name arguments)."""

    value: str

    @property
    def type(self) -> DataType:
        from .types import Handle

        return Handle()


@dataclass(frozen=True)
class Variable(Expr):
    """A scalar (or vector) variable reference by name."""

    name: str
    dtype: DataType = field(default=Int(32))

    @property
    def type(self) -> DataType:
        return self.dtype


@dataclass(frozen=True)
class Cast(Expr):
    """Value conversion to a target type (lane count must match)."""

    dtype: DataType
    value: Expr

    def __post_init__(self) -> None:
        if self.dtype.lanes != self.value.type.lanes:
            raise ValueError(
                f"cast lane mismatch: {self.dtype} vs {self.value.type}"
            )

    @property
    def type(self) -> DataType:
        return self.dtype


class _Binary(Expr):
    """Shared shape for binary arithmetic nodes."""

    a: Expr
    b: Expr

    @property
    def type(self) -> DataType:
        return promote(self.a.type, self.b.type)


def _binary_node(name: str):
    cls = dataclass(frozen=True)(
        type(name, (_Binary,), {"__annotations__": {"a": Expr, "b": Expr}})
    )
    return cls


Add = _binary_node("Add")
Sub = _binary_node("Sub")
Mul = _binary_node("Mul")
Div = _binary_node("Div")
Mod = _binary_node("Mod")
Min = _binary_node("Min")
Max = _binary_node("Max")


class _Compare(Expr):
    a: Expr
    b: Expr

    @property
    def type(self) -> DataType:
        return BOOL.with_lanes(promote(self.a.type, self.b.type).lanes)


def _compare_node(name: str):
    cls = dataclass(frozen=True)(
        type(name, (_Compare,), {"__annotations__": {"a": Expr, "b": Expr}})
    )
    return cls


EQ = _compare_node("EQ")
NE = _compare_node("NE")
LT = _compare_node("LT")
LE = _compare_node("LE")
GT = _compare_node("GT")
GE = _compare_node("GE")
And = _compare_node("And")
Or = _compare_node("Or")


@dataclass(frozen=True)
class Not(Expr):
    value: Expr

    @property
    def type(self) -> DataType:
        return BOOL.with_lanes(self.value.type.lanes)


@dataclass(frozen=True)
class Select(Expr):
    """Pointwise ternary: ``condition ? true_value : false_value``."""

    condition: Expr
    true_value: Expr
    false_value: Expr

    @property
    def type(self) -> DataType:
        return promote(self.true_value.type, self.false_value.type)


@dataclass(frozen=True)
class Load(Expr):
    """A (vector) load: ``name[index]`` with ``index.lanes`` result lanes."""

    dtype: DataType
    name: str
    index: Expr

    def __post_init__(self) -> None:
        if self.dtype.lanes != self.index.type.lanes:
            raise ValueError(
                f"load lane mismatch: type {self.dtype} vs index "
                f"{self.index.type}"
            )

    @property
    def type(self) -> DataType:
        return self.dtype


@dataclass(frozen=True)
class Ramp(Expr):
    """``ramp(base, stride, count)``: concat of base + i*stride, i < count."""

    base: Expr
    stride: Expr
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"ramp count must be >= 1, got {self.count}")
        if self.base.type.lanes != self.stride.type.lanes:
            raise ValueError(
                f"ramp base/stride lane mismatch: {self.base.type} vs "
                f"{self.stride.type}"
            )

    @property
    def type(self) -> DataType:
        return promote(self.base.type, self.stride.type).widen_lanes(self.count)


@dataclass(frozen=True)
class Broadcast(Expr):
    """``xN(value)``: N concatenated copies of ``value``."""

    value: Expr
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"broadcast count must be >= 1, got {self.count}")

    @property
    def type(self) -> DataType:
        return self.value.type.widen_lanes(self.count)


@dataclass(frozen=True)
class VectorReduce(Expr):
    """Sums adjacent groups of lanes down to ``result_lanes`` lanes.

    ``value.lanes`` must be divisible by ``result_lanes``; each output lane
    ``i`` is the sum of input lanes ``[i*g, (i+1)*g)`` with
    ``g = value.lanes // result_lanes``.  Only the ``add`` reducer is
    needed for this paper.
    """

    op: str
    value: Expr
    result_lanes: int

    def __post_init__(self) -> None:
        if self.value.type.lanes % self.result_lanes != 0:
            raise ValueError(
                f"vector_reduce: {self.value.type.lanes} lanes not divisible"
                f" by {self.result_lanes}"
            )
        if self.op != "add":
            raise ValueError(f"unsupported reduce op {self.op!r}")

    @property
    def type(self) -> DataType:
        return self.value.type.with_lanes(self.result_lanes)


class CallType:
    """How a Call node should be resolved."""

    INTRINSIC = "intrinsic"
    HALIDE = "halide"  # frontend reference to another Func
    IMAGE = "image"  # frontend reference to an input image
    EXTERN = "extern"


@dataclass(frozen=True)
class Call(Expr):
    """An intrinsic or function call."""

    dtype: DataType
    name: str
    args: Tuple[Expr, ...]
    call_type: str = CallType.INTRINSIC

    @property
    def type(self) -> DataType:
        return self.dtype


@dataclass(frozen=True)
class Let(Expr):
    """``let name = value in body``."""

    name: str
    value: Expr
    body: Expr

    @property
    def type(self) -> DataType:
        return self.body.type


@dataclass(frozen=True)
class Shuffle(Expr):
    """Select lanes from a concatenation of input vectors.

    ``indices[i]`` picks lane ``indices[i]`` of ``concat(vectors)``.  This
    is the Halide node that HARDBOILED's shuffle intrinsics
    (``KWayInterleave``, ``ConvolutionShuffle``) desugar into.
    """

    vectors: Tuple[Expr, ...]
    indices: Tuple[int, ...]

    def __post_init__(self) -> None:
        total = sum(v.type.lanes for v in self.vectors)
        for i in self.indices:
            if not 0 <= i < total:
                raise ValueError(f"shuffle index {i} out of range 0..{total-1}")

    @property
    def type(self) -> DataType:
        return self.vectors[0].type.with_lanes(len(self.indices))


#: Nodes a generic traversal must know about, keyed by child attributes.
EXPR_CHILDREN = {
    IntImm: (),
    FloatImm: (),
    StringImm: (),
    Variable: (),
    Cast: ("value",),
    Add: ("a", "b"),
    Sub: ("a", "b"),
    Mul: ("a", "b"),
    Div: ("a", "b"),
    Mod: ("a", "b"),
    Min: ("a", "b"),
    Max: ("a", "b"),
    EQ: ("a", "b"),
    NE: ("a", "b"),
    LT: ("a", "b"),
    LE: ("a", "b"),
    GT: ("a", "b"),
    GE: ("a", "b"),
    And: ("a", "b"),
    Or: ("a", "b"),
    Not: ("value",),
    Select: ("condition", "true_value", "false_value"),
    Load: ("index",),
    Ramp: ("base", "stride"),
    Broadcast: ("value",),
    VectorReduce: ("value",),
    Call: ("args",),
    Let: ("value", "body"),
    Shuffle: ("vectors",),
}
