"""Scalar and vector data types for the IR.

Mirrors Halide's ``Type``: a type code, a bit width, and a number of vector
lanes.  ``BFloat(16)`` is a first-class type code because the AMX
``TDPBF16PS`` instruction consumes bfloat16 operands.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class TypeCode(enum.Enum):
    """The kind of scalar a :class:`DataType` holds."""

    INT = "int"
    UINT = "uint"
    FLOAT = "float"
    BFLOAT = "bfloat"
    HANDLE = "handle"


@dataclass(frozen=True)
class DataType:
    """A (possibly vector) machine type: ``code`` x ``bits`` x ``lanes``."""

    code: TypeCode
    bits: int
    lanes: int = 1

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"bits must be positive, got {self.bits}")
        if self.lanes <= 0:
            raise ValueError(f"lanes must be positive, got {self.lanes}")

    # -- predicates --------------------------------------------------------

    def is_scalar(self) -> bool:
        return self.lanes == 1

    def is_vector(self) -> bool:
        return self.lanes > 1

    def is_int(self) -> bool:
        return self.code is TypeCode.INT

    def is_uint(self) -> bool:
        return self.code is TypeCode.UINT

    def is_float(self) -> bool:
        return self.code in (TypeCode.FLOAT, TypeCode.BFLOAT)

    def is_bfloat(self) -> bool:
        return self.code is TypeCode.BFLOAT

    def is_bool(self) -> bool:
        return self.code is TypeCode.UINT and self.bits == 1

    def is_handle(self) -> bool:
        return self.code is TypeCode.HANDLE

    # -- derived types -----------------------------------------------------

    def element_of(self) -> "DataType":
        """The scalar type of one lane."""
        return DataType(self.code, self.bits, 1)

    def with_lanes(self, lanes: int) -> "DataType":
        return DataType(self.code, self.bits, lanes)

    def widen_lanes(self, factor: int) -> "DataType":
        return DataType(self.code, self.bits, self.lanes * factor)

    def bytes_per_lane(self) -> int:
        return (self.bits + 7) // 8

    def bytes(self) -> int:
        return self.bytes_per_lane() * self.lanes

    # -- numpy interop -----------------------------------------------------

    def to_numpy(self) -> np.dtype:
        """The numpy dtype used to *store* values of this type.

        bfloat16 has no numpy dtype; it is stored as float32 and rounded
        through :mod:`repro.targets.bfloat16` at load/store boundaries.
        """
        if self.code is TypeCode.FLOAT:
            return np.dtype({16: np.float16, 32: np.float32, 64: np.float64}[self.bits])
        if self.code is TypeCode.BFLOAT:
            return np.dtype(np.float32)
        if self.code is TypeCode.INT:
            return np.dtype({8: np.int8, 16: np.int16, 32: np.int32, 64: np.int64}[self.bits])
        if self.code is TypeCode.UINT:
            if self.bits == 1:
                return np.dtype(np.bool_)
            return np.dtype({8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}[self.bits])
        raise ValueError(f"no numpy dtype for {self}")

    # -- display -----------------------------------------------------------

    def short_name(self) -> str:
        base = {
            TypeCode.INT: f"int{self.bits}",
            TypeCode.UINT: f"uint{self.bits}" if self.bits != 1 else "bool",
            TypeCode.FLOAT: f"float{self.bits}",
            TypeCode.BFLOAT: f"bfloat{self.bits}",
            TypeCode.HANDLE: "handle",
        }[self.code]
        if self.lanes > 1:
            return f"{base}x{self.lanes}"
        return base

    def __str__(self) -> str:
        return self.short_name()


# -- convenience constructors (Halide spelling) ----------------------------


def Int(bits: int, lanes: int = 1) -> DataType:
    return DataType(TypeCode.INT, bits, lanes)


def UInt(bits: int, lanes: int = 1) -> DataType:
    return DataType(TypeCode.UINT, bits, lanes)


def Float(bits: int, lanes: int = 1) -> DataType:
    return DataType(TypeCode.FLOAT, bits, lanes)


def BFloat(bits: int = 16, lanes: int = 1) -> DataType:
    return DataType(TypeCode.BFLOAT, bits, lanes)


def Bool(lanes: int = 1) -> DataType:
    return DataType(TypeCode.UINT, 1, lanes)


def Handle() -> DataType:
    return DataType(TypeCode.HANDLE, 64, 1)


INT32 = Int(32)
INT64 = Int(64)
FLOAT16 = Float(16)
FLOAT32 = Float(32)
BFLOAT16 = BFloat(16)
BOOL = Bool()


def promote(a: DataType, b: DataType) -> DataType:
    """Type promotion for mixed binary operations.

    Follows Halide's rules closely enough for this project: matching lanes
    are required (or one side scalar, which broadcasts); float beats int;
    wider bits beat narrower; int beats uint at equal width.
    """
    if a.lanes != b.lanes:
        if a.lanes == 1:
            a = a.with_lanes(b.lanes)
        elif b.lanes == 1:
            b = b.with_lanes(a.lanes)
        else:
            raise ValueError(f"cannot promote {a} with {b}: lane mismatch")
    if a == b:
        return a
    if a.is_float() and not b.is_float():
        return a
    if b.is_float() and not a.is_float():
        return b
    if a.is_float() and b.is_float():
        # plain float beats bfloat at equal width; wider wins otherwise
        if a.bits != b.bits:
            return a if a.bits > b.bits else b
        if a.code is TypeCode.FLOAT:
            return a
        return b
    # both integral
    if a.bits != b.bits:
        return a if a.bits > b.bits else b
    if a.is_int():
        return a
    return b
