"""Generic traversal and rewriting over IR trees.

Both the visitor and the mutator dispatch on the node's class name: define
``visit_Add`` / ``mutate_Load`` etc. on a subclass to intercept specific
nodes; everything else is traversed generically via dataclass fields.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from .expr import Expr
from .stmt import Stmt


def _is_node(value: Any) -> bool:
    return isinstance(value, (Expr, Stmt))


class IRVisitor:
    """Read-only traversal; override ``visit_<ClassName>`` to intercept."""

    def visit(self, node):
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node):
        for f in dataclasses.fields(node):
            value = getattr(node, f.name)
            if _is_node(value):
                self.visit(value)
            elif isinstance(value, tuple):
                for item in value:
                    if _is_node(item):
                        self.visit(item)
        return None


class IRMutator:
    """Rebuilds the tree bottom-up; override ``mutate_<ClassName>``.

    Nodes are only reconstructed when a child actually changed, so
    un-modified subtrees keep their identity (cheap and cache-friendly).
    """

    def mutate(self, node):
        if node is None:
            return None
        method = getattr(self, f"mutate_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_mutate(node)

    def generic_mutate(self, node):
        changes = {}
        for f in dataclasses.fields(node):
            value = getattr(node, f.name)
            if _is_node(value):
                new = self.mutate(value)
                if new is not value:
                    changes[f.name] = new
            elif isinstance(value, tuple) and any(_is_node(v) for v in value):
                new_items = tuple(
                    self.mutate(v) if _is_node(v) else v for v in value
                )
                if any(a is not b for a, b in zip(new_items, value)):
                    changes[f.name] = new_items
        if not changes:
            return node
        return dataclasses.replace(node, **changes)


class NodeCounter(IRVisitor):
    """Counts nodes, optionally filtered by a predicate."""

    def __init__(self, predicate=None):
        self.count = 0
        self.predicate = predicate

    def generic_visit(self, node):
        if self.predicate is None or self.predicate(node):
            self.count += 1
        return super().generic_visit(node)


def count_nodes(node, predicate=None) -> int:
    counter = NodeCounter(predicate)
    counter.visit(node)
    return counter.count
