"""Small analyses over IR trees: sizes, free variables, substitution."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from .expr import Expr, Let, Load, Variable
from .stmt import For, LetStmt, Stmt, Store
from .visitor import IRMutator, IRVisitor, count_nodes


def expr_size(node) -> int:
    """Number of IR nodes (the paper's AST-size cost)."""
    return count_nodes(node)


class _FreeVars(IRVisitor):
    def __init__(self) -> None:
        self.bound: Set[str] = set()
        self.free: Set[str] = set()

    def visit_Variable(self, node: Variable):
        if node.name not in self.bound:
            self.free.add(node.name)

    def visit_Let(self, node: Let):
        self.visit(node.value)
        shadowed = node.name in self.bound
        self.bound.add(node.name)
        self.visit(node.body)
        if not shadowed:
            self.bound.discard(node.name)

    def visit_LetStmt(self, node: LetStmt):
        self.visit(node.value)
        shadowed = node.name in self.bound
        self.bound.add(node.name)
        self.visit(node.body)
        if not shadowed:
            self.bound.discard(node.name)

    def visit_For(self, node: For):
        self.visit(node.min_expr)
        self.visit(node.extent)
        shadowed = node.name in self.bound
        self.bound.add(node.name)
        self.visit(node.body)
        if not shadowed:
            self.bound.discard(node.name)


def free_variables(node) -> Set[str]:
    visitor = _FreeVars()
    visitor.visit(node)
    return visitor.free


class _Substitute(IRMutator):
    def __init__(self, mapping: Dict[str, Expr]):
        self.mapping = mapping

    def mutate_Variable(self, node: Variable):
        return self.mapping.get(node.name, node)

    def mutate_Let(self, node: Let):
        value = self.mutate(node.value)
        if node.name in self.mapping:
            inner = _Substitute(
                {k: v for k, v in self.mapping.items() if k != node.name}
            )
            body = inner.mutate(node.body)
        else:
            body = self.mutate(node.body)
        if value is node.value and body is node.body:
            return node
        return Let(node.name, value, body)


def substitute(node, mapping: Dict[str, Expr]):
    """Replace free variables by expressions (capture-aware for Let)."""
    if not mapping:
        return node
    return _Substitute(mapping).mutate(node)


class _LoadCollector(IRVisitor):
    def __init__(self, name: Optional[str]) -> None:
        self.name = name
        self.loads: List[Load] = []

    def visit_Load(self, node: Load):
        if self.name is None or node.name == self.name:
            self.loads.append(node)
        self.visit(node.index)


def collect_loads(node, name: Optional[str] = None) -> List[Load]:
    collector = _LoadCollector(name)
    collector.visit(node)
    return collector.loads


class _StoreCollector(IRVisitor):
    def __init__(self) -> None:
        self.stores: List[Store] = []

    def visit_Store(self, node: Store):
        self.stores.append(node)
        self.visit(node.index)
        self.visit(node.value)


def collect_stores(stmt: Stmt) -> List[Store]:
    collector = _StoreCollector()
    collector.visit(stmt)
    return collector.stores


class _Contains(IRVisitor):
    def __init__(self, predicate):
        self.predicate = predicate
        self.found = False

    def generic_visit(self, node):
        if self.found:
            return None
        if self.predicate(node):
            self.found = True
            return None
        return super().generic_visit(node)


def contains(node, predicate) -> bool:
    visitor = _Contains(predicate)
    visitor.visit(node)
    return visitor.found


def loads_from(node, names: Iterable[str]) -> bool:
    wanted = set(names)
    return contains(
        node, lambda n: isinstance(n, Load) and n.name in wanted
    )
