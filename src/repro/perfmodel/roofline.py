"""Roofline performance model driven by interpreter counters.

The simulator cannot measure wall-clock GPU time, so runtimes are modeled
the same way the paper computes its "theoretical peak" reference lines
(§V footnote 7): work and traffic divided by device rates — except the
work/traffic quantities are *measured* during interpretation, so the
Toeplitz redundancy, swizzle traffic, and scalar-vs-tensor split of each
schedule are all reflected.  Sustained-fraction knobs account for the
fact that generated kernels do not hit theoretical peaks; they are global
per-engine constants, not per-benchmark fits.

Absolute times therefore land near the right order of magnitude; the
*shape* of every comparison (who wins, what each kernel is bound by,
where crossovers fall) comes from the counters alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..runtime.counters import Counters
from ..targets.device import DeviceSpec


@dataclass(frozen=True)
class Efficiency:
    """Sustained fraction of peak per engine.

    ``l1_reuse`` discounts counted L1 traffic: the interpreter counts
    every Load lane, but real kernels absorb most reuse in registers and
    shared memory (Halide's unrolled schedules keep the kernel taps and
    sliding windows register-resident).
    """

    tensor: float = 0.45
    cuda: float = 0.30
    dram: float = 0.85
    l1: float = 0.90
    l1_reuse: float = 0.25


#: per-device sustained fractions, calibrated once against two of the
#: paper's own measured Halide kernels (A100 GEMM 66 us / 223 us;
#: RTX 4070 SUPER conv1d k=256) and then held fixed for every prediction
DEVICE_EFFICIENCY = {
    "A100-SXM-80GB": Efficiency(tensor=0.10, cuda=0.55),
    "RTX-4070-SUPER": Efficiency(tensor=0.65, cuda=0.33),
}


@dataclass
class TimeBreakdown:
    """Component times (seconds); the roofline takes the max."""

    tensor_s: float
    cuda_s: float
    dram_s: float
    l1_s: float
    launch_s: float

    @property
    def compute_s(self) -> float:
        return max(self.tensor_s, self.cuda_s)

    @property
    def memory_s(self) -> float:
        return max(self.dram_s, self.l1_s)

    @property
    def total_s(self) -> float:
        return max(self.compute_s, self.memory_s) + self.launch_s

    @property
    def bound(self) -> str:
        """Paper-style bound tag: (C)ompute or (M)emory."""
        return "C" if self.compute_s >= self.memory_s else "M"

    def us(self) -> float:
        return self.total_s * 1e6

    def ms(self) -> float:
        return self.total_s * 1e3

    def __str__(self) -> str:
        return (
            f"{self.ms():.3f} ms ({self.bound}) [tensor {self.tensor_s*1e3:.3f},"
            f" cuda {self.cuda_s*1e3:.3f}, dram {self.dram_s*1e3:.3f},"
            f" l1 {self.l1_s*1e3:.3f}]"
        )


@dataclass
class PerfModel:
    device: DeviceSpec
    efficiency: Efficiency = None

    def __post_init__(self):
        if self.efficiency is None:
            self.efficiency = DEVICE_EFFICIENCY.get(
                self.device.name, Efficiency()
            )

    def estimate(
        self, counters: Counters, kernels: int = 1
    ) -> TimeBreakdown:
        eff = self.efficiency
        dev = self.device
        # fp16/bf16 and int8 MACs share the tensor unit, so their times
        # add; int8 runs at the device's dot-product (VNNI/DP4A) rate
        tensor_s = counters.tensor_macs / (
            dev.tensor_macs_per_s * eff.tensor
        ) + counters.int8_macs / (dev.int8_rate() * eff.tensor)
        # two FLOPs pair into one FMA on general-purpose lanes; integer
        # index arithmetic shares SM issue slots at roughly a quarter of
        # an FMA each (dual-issue integer pipes) — offloading it is part
        # of why tensor units help even bandwidth-limited kernels
        cuda_s = (counters.scalar_flops / 2.0 + counters.int_ops / 4.0) / (
            dev.cuda_macs_per_s * eff.cuda
        )
        dram_bytes = counters.load_bytes.get(
            "dram_unique", 0
        ) + counters.store_bytes.get("dram_unique", 0)
        dram_s = dram_bytes / (dev.dram_bytes_per_s * eff.dram)
        l1_bytes = (
            counters.load_bytes.get("dram", 0)
            + counters.load_bytes.get("l1", 0)
            + counters.load_bytes.get("shared", 0)
            + counters.store_bytes.get("dram", 0)
            + counters.store_bytes.get("l1", 0)
            + counters.store_bytes.get("shared", 0)
        )
        l1_s = (l1_bytes * eff.l1_reuse) / (dev.l1_bytes_per_s * eff.l1)
        return TimeBreakdown(
            tensor_s=tensor_s,
            cuda_s=cuda_s,
            dram_s=dram_s,
            l1_s=l1_s,
            launch_s=kernels * dev.launch_overhead_s,
        )

    def theoretical_peak(
        self,
        macs: float,
        io_bytes: float,
        on_tensor_unit: bool = True,
    ) -> TimeBreakdown:
        """The paper's ideal reference line: algorithmic work at 100%
        efficiency, oblivious to redundant computation (footnote 7)."""
        dev = self.device
        rate = dev.tensor_macs_per_s if on_tensor_unit else dev.cuda_macs_per_s
        compute = macs / rate
        memory = io_bytes / dev.dram_bytes_per_s
        return TimeBreakdown(
            tensor_s=compute if on_tensor_unit else 0.0,
            cuda_s=0.0 if on_tensor_unit else compute,
            dram_s=memory,
            l1_s=0.0,
            launch_s=0.0,
        )
