"""Small text-table helpers for the benchmark harnesses."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    columns = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []

    def fmt(row):
        return "  ".join(
            str(cell).ljust(width) for cell, width in zip(row, widths)
        )

    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt(row))
    return "\n".join(lines)


def speedup(baseline_s: float, accelerated_s: float) -> float:
    return baseline_s / accelerated_s


def fmt_time(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
