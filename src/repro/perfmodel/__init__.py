"""Roofline performance model and reporting helpers."""

from .report import fmt_time, format_table, speedup
from .roofline import Efficiency, PerfModel, TimeBreakdown

__all__ = [
    "Efficiency",
    "PerfModel",
    "TimeBreakdown",
    "fmt_time",
    "format_table",
    "speedup",
]
