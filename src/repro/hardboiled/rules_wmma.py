"""Application-specific and lowering rules for Nvidia Tensor Cores (WMMA).

Three pattern families are lowered (paper §III-D.4):

* **MatMul-like** — the m16n16k16 fp16 GEMM tile.
* **Convolution-like** — 1-D convolution segments become m32n8k16 MMAs
  against a Toeplitz matrix built from the kernel by
  ``ConvolutionShuffle`` (paper §V-A, App. B): 256 outputs x 8 taps per
  MMA, the input loaded as 32 overlapping 16-wide rows.
* **Strided (downsampling) convolution** — the stride-2 Toeplitz
  ``A_down`` (§V-B); only 4 of the 8 tile columns hold valid outputs, so
  the accumulator is expanded/compacted around the MMA.  The wasted
  columns are the "redundant computation introduced by Toeplitz
  transformations" the paper's roofline discussion mentions.
"""

from __future__ import annotations

from ..eqsat import parse_program

# GEMM tile
GM, GN, GK = 16, 16, 16
G_C = GM * GN  # 256
G_MUL = GM * GN * GK  # 4096

# convolution tile: 256-output segments, 8-tap blocks -> m32n8k16
SEG = 256
TAPS = 8
C_MUL = SEG * TAPS  # 2048

# downsampling tile: 128-output segments (4 valid columns of 8)
DSEG = 128
D_MUL = DSEG * TAPS  # 1024

WMMA_PROGRAM = f"""
(relation wmma-A-tile (Expr Expr))
(relation wmma-B-tile (Expr Expr))

;; --- MatMul-like (m{GM}n{GN}k{GK}) ------------------------------------

(rule ((= lhs (Load (Float16 {G_MUL}) A-name
          (Ramp (Broadcast (Ramp A-base 1 {GK}) {GN})
                (Broadcast A-stride {GM * GK}) {GM}))))
      ((wmma-A-tile lhs (Call (Float16 {GM * GK}) "wmma.load.a.sync"
          (Args A-name A-base A-stride {GM} {GK})))))

(rule ((= rhs (Load (Float16 {G_MUL}) B-name
          (Broadcast (Ramp (Ramp B-base B-stride {GK})
                           (Broadcast 1 {GK}) {GN}) {GM}))))
      ((wmma-B-tile rhs (Call (Float16 {GK * GN}) "wmma.load.b.sync"
          (Args B-name B-base B-stride {GK} {GN})))))

(rule ((= e (Add (VectorReduceAdd {G_C}
                   (Mul (Cast (Float32 {G_MUL}) lhs)
                        (Cast (Float32 {G_MUL}) rhs)))
                 C))
       (wmma-A-tile lhs frag-A)
       (wmma-B-tile rhs frag-B))
      ((let new-e (Call (Float32 {G_C}) "wmma.mma.sync"
           (Args (Mem2WMMA C) frag-A frag-B {GM} {GN} {GK})))
       (union e (WMMA2Mem new-e))))

;; --- convolution-like (m32n8k16 against a Toeplitz matrix) ------------

(rule ((= e (Add (VectorReduceAdd {SEG}
                   (Mul (Cast (Float32 {C_MUL}) lhs)
                        (Cast (Float32 {C_MUL}) rhs)))
                 C))
       (= lhs (Load (Float16 {C_MUL}) I-name
          (Ramp (Ramp I-base 1 {TAPS}) (Broadcast 1 {TAPS}) {SEG})))
       (= rhs (Load (Float16 {C_MUL}) K-name
          (Broadcast (Ramp K-base 1 {TAPS}) {SEG}))))
      ((let toep (ExprVar (Call (Float16 128) "ConvolutionShuffle"
           (Args K-name K-base 16 8 {TAPS} 1))))
       (let frag-I (Call (Float16 512) "wmma.load.a.sync"
           (Args I-name I-base 8 32 16)))
       (let frag-K (Call (Float16 128) "wmma.load.b.sync"
           (Args toep 0 8 16 8)))
       (let new-e (Call (Float32 {SEG}) "wmma.mma.sync"
           (Args (Mem2WMMA C) frag-I frag-K 32 8 16)))
       (union e (WMMA2Mem new-e))))

;; --- strided convolution / downsample by 2 (A_down Toeplitz) ----------

(rule ((= e (Add (VectorReduceAdd {DSEG}
                   (Mul (Cast (Float32 {D_MUL}) lhs)
                        (Cast (Float32 {D_MUL}) rhs)))
                 C))
       (= lhs (Load (Float16 {D_MUL}) I-name
          (Ramp (Ramp I-base 1 {TAPS}) (Broadcast 2 {TAPS}) {DSEG})))
       (= rhs (Load (Float16 {D_MUL}) K-name
          (Broadcast (Ramp K-base 1 {TAPS}) {DSEG}))))
      ((let toep (ExprVar (Call (Float16 128) "ConvolutionShuffle"
           (Args K-name K-base 16 8 {TAPS} 2))))
       (let frag-I (Call (Float16 512) "wmma.load.a.sync"
           (Args I-name I-base 8 32 16)))
       (let frag-K (Call (Float16 128) "wmma.load.b.sync"
           (Args toep 0 8 16 8)))
       (let expanded (Call (Float32 256) "TileExpand"
           (Args (Mem2WMMA C) 4 8)))
       (let new-e (Call (Float32 256) "wmma.mma.sync"
           (Args expanded frag-I frag-K 32 8 16)))
       (let compacted (Call (Float32 {DSEG}) "TileCompact"
           (Args new-e 8 4)))
       (union e (WMMA2Mem compacted))))

;; --- multiphase (upsample-by-2) convolution ---------------------------
;;
;; The phase-decomposed form O_phase(dx, x) += K[2*rx + dx] * I[x + rx]
;; with phase innermost in storage (SS V-B).  128 input positions x 2
;; phases = 256 outputs per m32n8k16 MMA against the A_up matrix built
;; by MultiphaseShuffle; rows advance the input by 4.

(rule ((= e (Add (VectorReduceAdd 256
                   (Mul (Cast (Float32 2048) lhs)
                        (Cast (Float32 2048) rhs)))
                 C))
       (= lhs (Load (Float16 2048) I-name
          (Ramp (Add (Broadcast I-base 16)
                     (Broadcast (Ramp 0 1 8) 2))
                (Broadcast 1 16) 128)))
       (= rhs (Load (Float16 2048) K-name
          (Broadcast (Ramp (Ramp K-base 2 8) (Broadcast 1 8) 2) 128))))
      ((let toep (ExprVar (Call (Float16 128) "MultiphaseShuffle"
           (Args K-name K-base 16 8 16 2))))
       (let frag-I (Call (Float16 512) "wmma.load.a.sync"
           (Args I-name I-base 4 32 16)))
       (let frag-K (Call (Float16 128) "wmma.load.b.sync"
           (Args toep 0 8 16 8)))
       (let new-e (Call (Float32 256) "wmma.mma.sync"
           (Args (Mem2WMMA C) frag-I frag-K 32 8 16)))
       (union e (WMMA2Mem new-e))))

;; --- accumulator initialization ----------------------------------------

(rewrite (Mem2WMMA (Broadcast 0.0 {G_C}))
         (Call (Float32 {G_C}) "wmma.fill.sync" (Args {GM} {GN} 0.0)))
(rewrite (Mem2WMMA (Broadcast 0.0 {DSEG}))
         (Call (Float32 {DSEG}) "wmma.fill.sync" (Args 16 8 0.0)))

;; --- accumulator stores ---------------------------------------------------

(rule ((= s (Store buffer (WMMA2Mem tile) (Ramp base 1 {G_C}))))
      ((union s (Evaluate (Call (Float32 1) "wmma.store.d.sync"
          (Args buffer base {GN} {GM} {GN} tile))))))
(rule ((= s (Store buffer (WMMA2Mem tile) (Ramp base 1 {DSEG}))))
      ((union s (Evaluate (Call (Float32 1) "wmma.store.d.sync"
          (Args buffer base 8 16 8 tile))))))
(rule ((= s (Store buffer (WMMA2Mem tile)
          (Ramp (Ramp base 1 {GN}) (Broadcast stride {GN}) {GM}))))
      ((union s (Evaluate (Call (Float32 1) "wmma.store.d.sync"
          (Args buffer base stride {GM} {GN} tile))))))
"""

_cache = None


def wmma_rules():
    global _cache
    if _cache is None:
        _cache = parse_program(WMMA_PROGRAM, relations={"has-lanes"})
    return _cache
