"""HARDBOILED: the EqSat-based tensor instruction selector."""

from . import intrinsics  # noqa: F401  (registers interpreter handlers)
from .cost import hardboiled_cost_model
from .encode import (
    EncodeError,
    Encoder,
    contains_movement,
    decode_expr,
    decode_stmt,
    encode_expr,
    encode_stmt,
    movement_wrapper,
)
from .rules_amx import amx_rules
from .rules_axiomatic import axiomatic_rules
from .rules_dp4a import dp4a_rules
from .rules_supporting import supporting_rules
from .rules_wmma import wmma_rules
from .tile_extractor import (
    SelectionError,
    SelectionReport,
    StoreSelection,
    TileExtractor,
    fuse_gpu_lane_loops,
    select_instructions,
)

__all__ = [name for name in dir() if not name.startswith("_")]


def compile_tensorized(
    output_func,
    iterations: int = 14,
    strict: bool = True,
    cache_dir=None,
    backend: str = "interpret",
    device="host",
):
    """Lower a scheduled Func and run instruction selection.

    Returns ``(CompiledPipeline, SelectionReport)``.  With ``strict`` a
    store the schedule placed in accelerator memory that cannot be mapped
    raises :class:`SelectionError` (selection is hit-or-miss, §III-D.3).

    With ``cache_dir`` the compile goes through the warm-start artifact
    store (:mod:`repro.service`): a process that finds a matching
    artifact skips equality saturation and codegen entirely and the
    report's ``artifact_cache`` says which path ran.
    """
    from ..lowering import lower
    from ..runtime.executor import CompiledPipeline

    lowered = lower(output_func)
    if cache_dir is not None:
        from ..service import warm_compile

        return warm_compile(
            lowered,
            cache_dir,
            backend=backend,
            device=device,
            iterations=iterations,
            strict=strict,
        )
    tensorized, report = select_instructions(
        lowered, iterations=iterations, strict=strict
    )
    return CompiledPipeline(tensorized, backend=backend), report
