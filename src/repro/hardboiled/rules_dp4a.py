"""Application-specific and lowering rules for int8 dot-product units.

The geometry is the dp4a macro-tile (see :mod:`repro.targets.dp4a`):
C[16,16] i32 += A[16,64] i8 . B[64,16] i8, with B consumed in the
VNNI-4 layout (groups of four rows interleaved).  The structure mirrors
:mod:`.rules_amx` one-for-one: application rules populate the
``dp4a-A-tile``/``dp4a-B-tile`` relations with expressions that place
each operand in a register block — reusing the ``KWayInterleave``
swizzle with ``k = 4`` (the paper's §V-A shuffle generalizes over the
interleave factor) when B arrives row-major — and the lowering rule
rewrites the matched int32-accumulating MatMul into ``dp4a_matmul``.

The one deliberate difference from AMX: a surviving outbound
``DP4A2Mem`` is *legal* (accumulators are ordinary vector registers),
so quantized epilogues can read tiles pointwise, as WMMA post-ops do.
"""

from __future__ import annotations

from ..eqsat import parse_program

M, N, K = 16, 16, 64
KG = 4  # the interleave factor: int8 values consumed per lane
C_LANES = M * N  # 256
MUL_LANES = M * N * K  # 16384
A_LANES = M * K  # 1024
B_LANES = K * N  # 1024

DP4A_PROGRAM = f"""
(relation dp4a-A-tile (Expr Expr))
(relation dp4a-B-tile (Expr Expr))

;; --- application-specific rules -------------------------------------

;; A operand in the standard layout: A(r, x) loaded as x-major blocks of
;; r-contiguous rows -> one dp4a_load
(rule ((= lhs (Load (Int8 {MUL_LANES}) A-name
          (Ramp (Broadcast (Ramp A-base 1 {K}) {N})
                (Broadcast A-stride {N * K}) {M}))))
      ((dp4a-A-tile lhs (Call (Int8 {A_LANES}) "dp4a_load"
          (Args A-name A-base A-stride {M} {K})))))

;; B operand in the standard (row-major) layout: HARDBOILED discovers
;; the required swizzle and materializes the VNNI-4 form via the k=4
;; KWayInterleave
(rule ((= rhs (Load (Int8 {MUL_LANES}) B-name
          (Broadcast (Ramp (Ramp B-base B-stride {K})
                           (Broadcast 1 {K}) {N}) {M}))))
      ((let load-B (Load (Int8 {B_LANES}) B-name
          (Ramp (Ramp B-base 1 {N}) (Broadcast B-stride {N}) {K})))
       (let shuffled (ExprVar (Call (Int8 {B_LANES}) "KWayInterleave"
          (Args {KG} {K} {N} load-B))))
       (dp4a-B-tile rhs (Call (Int8 {B_LANES}) "dp4a_load"
          (Args shuffled 0 {KG * N} {K // KG} {KG * N})))))

;; B operand already in the VNNI-4 layout: B_vnni4(r%4, y, r/4) loads
;; with a three-level nested ramp over (group, row-group, column) -> a
;; direct gather of the (K/4, 4N) tile, no swizzle.  The emitted index
;; re-uses the *bound* strides B-s1/B-s2 (in-tree IR carries strides as
;; symbolic {{name}}.stride.{{d}} variables), so the read is correct for
;; any layout the pattern matches, padded or dense
(rule ((= rhs (Load (Int8 {MUL_LANES}) B-name
          (Broadcast (Ramp (Ramp (Ramp B-base 1 {KG})
                                 (Broadcast B-s2 {KG}) {K // KG})
                           (Broadcast B-s1 {K}) {N}) {M}))))
      ((dp4a-B-tile rhs (Load (Int8 {B_LANES}) B-name
          (Ramp (Ramp (Ramp B-base 1 {KG}) (Broadcast B-s1 {KG}) {N})
                (Broadcast B-s2 {KG * N}) {K // KG})))))

;; broadcasts distribute over accumulator reads
(rewrite (Broadcast (DP4A2Mem e) l) (DP4A2Mem (Broadcast e l)))

;; --- lowering rules ---------------------------------------------------

;; quantized MatMul: C + sum(i32(A) * i32(B)) -> dp4a_matmul
(rule ((= e (Add (VectorReduceAdd {C_LANES}
                   (Mul (Cast (Int32 {MUL_LANES}) lhs)
                        (Cast (Int32 {MUL_LANES}) rhs)))
                 C))
       (dp4a-A-tile lhs dp-A)
       (dp4a-B-tile rhs dp-B))
      ((let new-e (Call (Int32 {C_LANES}) "dp4a_matmul"
           (Args (Mem2DP4A C) dp-A dp-B {M} {N} {K})))
       (union e (DP4A2Mem new-e))))

;; tile initialization: storing broadcast integer zero into a register
;; block (the accumulator is int32, so the literal is 0, not 0.0)
(rewrite (Mem2DP4A (Broadcast 0 {C_LANES}))
         (Call (Int32 {C_LANES}) "dp4a_zero" (Args {M} {N})))

;; tile store, dense destination
(rule ((= s (Store buffer (DP4A2Mem tile) (Ramp base 1 {C_LANES}))))
      ((union s (Evaluate (Call (Int32 1) "dp4a_store"
          (Args buffer base {N} {M} {N} tile))))))

;; tile store, strided (row-major into a larger matrix)
(rule ((= s (Store buffer (DP4A2Mem tile)
          (Ramp (Ramp base 1 {N}) (Broadcast stride {N}) {M}))))
      ((union s (Evaluate (Call (Int32 1) "dp4a_store"
          (Args buffer base stride {M} {N} tile))))))
"""

_cache = None


def dp4a_rules():
    global _cache
    if _cache is None:
        _cache = parse_program(DP4A_PROGRAM, relations={"has-lanes"})
    return _cache
