"""Supporting rules: lane/type analysis (paper §A-4).

These are Datalog-style deductive rules that always saturate: they
propagate ``has-lanes`` facts to terms created by other rules and
evaluate ``MultiplyLanes`` on type terms.  The encoder seeds
``has-lanes`` for every subexpression of the input program.
"""

from __future__ import annotations

from ..eqsat import parse_program

SUPPORTING_PROGRAM = """
(relation has-lanes (Expr i64))

;; vector constructors
(rule ((= e (Ramp b s c)) (has-lanes b lb))
      ((has-lanes e (* lb c))))
(rule ((= e (Broadcast x c)) (has-lanes x lx))
      ((has-lanes e (* lx c))))
(rule ((= e (VectorReduceAdd l v)))
      ((has-lanes e l)))

;; lanes pass through pointwise operations
(rule ((= e (Add a b)) (has-lanes a l)) ((has-lanes e l)))
(rule ((= e (Add a b)) (has-lanes b l)) ((has-lanes e l)))
(rule ((= e (Sub a b)) (has-lanes a l)) ((has-lanes e l)))
(rule ((= e (Mul a b)) (has-lanes a l)) ((has-lanes e l)))
(rule ((= e (Mul a b)) (has-lanes b l)) ((has-lanes e l)))
(rule ((= e (Div a b)) (has-lanes a l)) ((has-lanes e l)))
(rule ((= e (Mod a b)) (has-lanes a l)) ((has-lanes e l)))
(rule ((= e (Min a b)) (has-lanes a l)) ((has-lanes e l)))
(rule ((= e (Max a b)) (has-lanes a l)) ((has-lanes e l)))
(rule ((= e (Cast t x)) (has-lanes x l)) ((has-lanes e l)))
(rule ((= e (Var n))) ((has-lanes e 1)))

;; loads/movement markers have the lanes of their index/payload
(rule ((= e (Load t n i)) (has-lanes i l)) ((has-lanes e l)))
(rule ((= e (Mem2AMX x)) (has-lanes x l)) ((has-lanes e l)))
(rule ((= e (AMX2Mem x)) (has-lanes x l)) ((has-lanes e l)))
(rule ((= e (Mem2WMMA x)) (has-lanes x l)) ((has-lanes e l)))
(rule ((= e (WMMA2Mem x)) (has-lanes x l)) ((has-lanes e l)))
(rule ((= e (Mem2DP4A x)) (has-lanes x l)) ((has-lanes e l)))
(rule ((= e (DP4A2Mem x)) (has-lanes x l)) ((has-lanes e l)))

;; MultiplyLanes computes result types for widened loads/casts
(rewrite (MultiplyLanes (Float64 l) x) (Float64 (* l x)))
(rewrite (MultiplyLanes (Float32 l) x) (Float32 (* l x)))
(rewrite (MultiplyLanes (Float16 l) x) (Float16 (* l x)))
(rewrite (MultiplyLanes (BFloat16 l) x) (BFloat16 (* l x)))
(rewrite (MultiplyLanes (Int8 l) x) (Int8 (* l x)))
(rewrite (MultiplyLanes (Int16 l) x) (Int16 (* l x)))
(rewrite (MultiplyLanes (Int32 l) x) (Int32 (* l x)))
(rewrite (MultiplyLanes (Int64 l) x) (Int64 (* l x)))
(rewrite (MultiplyLanes (UInt8 l) x) (UInt8 (* l x)))
"""

_cache = None


def supporting_rules():
    """The supporting rule set and its relation names."""
    global _cache
    if _cache is None:
        _cache = parse_program(SUPPORTING_PROGRAM)
    return _cache
