"""The extraction cost model (paper §III-D.3).

AST size, with two twists that implement "hit-or-miss" selection:

* un-cancelled data movements *into* an accelerator (``Mem2AMX``,
  ``Mem2WMMA``) are effectively infinite — if no lowering rule fired,
  the original (marker-carrying) form is extracted and the caller
  reports the store as unmapped;
* ``ExprVar`` subtrees are materialized once outside the hot loop, so
  their children contribute only epsilon.
"""

from __future__ import annotations

from ..eqsat import CostModel

#: runtime per-iteration upload into a tile register: to be avoided
MOVEMENT_IN_COST = 1000.0
#: an un-lowered AMX tile->memory movement is unrealizable without an
#: explicit tile_store instruction, so it must lose to every alternative
AMX_OUT_COST = 1000.0
#: reading a WMMA fragment into registers is legal (fused post-ops do
#: it), but a dedicated wmma.store is preferred when one applies
WMMA_OUT_COST = 30.0
#: DP4A accumulators are ordinary vector registers, so pointwise reads
#: (quantized epilogues: requant, bias, ReLU) are as legal as WMMA's —
#: but a dp4a_store still wins when a whole tile reaches memory
DP4A_OUT_COST = 30.0


def hardboiled_cost_model() -> CostModel:
    return CostModel(
        base_costs={
            "Mem2AMX": MOVEMENT_IN_COST,
            "Mem2WMMA": MOVEMENT_IN_COST,
            "Mem2DP4A": MOVEMENT_IN_COST,
            "AMX2Mem": AMX_OUT_COST,
            "WMMA2Mem": WMMA_OUT_COST,
            "DP4A2Mem": DP4A_OUT_COST,
        },
        hoisted_heads={"ExprVar": 1e-3},
    )
