"""Shuffle intrinsics HARDBOILED emits to re-layout operands.

These are the "application-specific" data movement helpers from the
paper: ``KWayInterleave`` produces the VNNI layout AMX expects, and
``ConvolutionShuffle`` materializes the (generalized) Toeplitz matrix
that turns convolution-like patterns into MatMul (paper §V-A/V-B and
Appendix B).  On real hardware they desugar into LLVM shuffle
instructions; here they are interpreter intrinsics that build the
corresponding tile values.
"""

from __future__ import annotations

import numpy as np

from ..ir import expr as E
from ..runtime.interpreter import Interpreter, memory_level, register_intrinsic


class ShuffleError(RuntimeError):
    pass


def kway_interleave(tile: np.ndarray, k: int) -> np.ndarray:
    """Interleave groups of ``k`` rows element-wise: (R, C) -> (R/k, k*C).

    ``out[p, k*j + t] == tile[k*p + t, j]`` — for ``k = 2`` this is the
    VNNI layout of AMX's B operand.
    """
    rows, cols = tile.shape
    if rows % k != 0:
        raise ShuffleError(f"KWayInterleave: {rows} rows not divisible by {k}")
    out = np.empty((rows // k, cols * k), dtype=tile.dtype)
    for t in range(k):
        out[:, t::k] = tile[t::k, :]
    return out


def toeplitz_from_kernel(
    kernel: np.ndarray, rows: int, cols: int, stride: int = 1
) -> np.ndarray:
    """The generalized Toeplitz coefficient matrix A_K (paper §V-A/V-B).

    ``A[c, j] = K[c - stride*j]`` when ``0 <= c - stride*j < len(K)``,
    else 0.  ``stride=1`` is plain convolution; ``stride=2`` is the
    downsampling matrix ``A_down`` of §V-B.
    """
    taps = kernel.shape[0]
    out = np.zeros((rows, cols), dtype=np.float32)
    for c in range(rows):
        for j in range(cols):
            t = c - stride * j
            if 0 <= t < taps:
                out[c, j] = np.float32(kernel[t])
    return out


def multiphase_matrix(
    kernel: np.ndarray, rows: int, cols: int, factor: int
) -> np.ndarray:
    """The upsampling coefficient matrix A_up of §V-B (see
    ``MultiphaseShuffle`` below for the index derivation)."""
    taps = kernel.shape[0]
    out = np.zeros((rows, cols), dtype=np.float32)
    for c in range(rows):
        for j in range(cols):
            t = factor * (c - j // factor) + (j % factor)
            if 0 <= t < taps:
                out[c, j] = np.float32(kernel[t])
    return out


def tile_expand(tile: np.ndarray, valid: int, cols: int) -> np.ndarray:
    """Pad each row of a (rows, valid) tile with zeros up to ``cols``."""
    rows = tile.size // valid
    out = np.zeros((rows, cols), dtype=np.float32)
    out[:, :valid] = np.asarray(tile, np.float32).reshape(rows, valid)
    return out


def tile_compact(tile: np.ndarray, cols: int, valid: int) -> np.ndarray:
    """Drop the padding columns of a (rows, cols) tile down to ``valid``."""
    rows = tile.size // cols
    matrix = np.asarray(tile, np.float32).reshape(rows, cols)
    return matrix[:, :valid]


@register_intrinsic("KWayInterleave")
def _kway_interleave(interp: Interpreter, call: E.Call, env):
    """``KWayInterleave(k, rows, cols, tile)``."""
    k = interp.eval_int(call.args[0], env)
    rows = interp.eval_int(call.args[1], env)
    cols = interp.eval_int(call.args[2], env)
    tile = interp.eval_vector(call.args[3], env)
    matrix = np.asarray(tile, dtype=np.float32).reshape(rows, cols)
    return kway_interleave(matrix, k).ravel()


@register_intrinsic("ConvolutionShuffle")
def _convolution_shuffle(interp: Interpreter, call: E.Call, env):
    """``ConvolutionShuffle(buffer, base, rows, cols, taps, stride)``.

    Reads ``taps`` kernel coefficients starting at ``base`` and builds
    the ``rows x cols`` Toeplitz matrix (row-major).
    """
    name_expr = call.args[0]
    if not isinstance(name_expr, E.StringImm):
        raise ShuffleError(
            "ConvolutionShuffle expects a buffer name as first argument"
        )
    buf = interp.buffer(name_expr.value)
    base = interp.eval_int(call.args[1], env)
    rows = interp.eval_int(call.args[2], env)
    cols = interp.eval_int(call.args[3], env)
    taps = interp.eval_int(call.args[4], env)
    stride = interp.eval_int(call.args[5], env)
    idx = base + np.arange(taps)
    if np.any(idx < 0) or np.any(idx >= buf.size):
        raise ShuffleError(
            f"ConvolutionShuffle out of bounds on {buf.name!r}"
        )
    kernel = buf.gather(idx)
    interp.counters.add_load(
        memory_level(buf), idx.size * buf.dtype.bytes_per_lane()
    )
    return toeplitz_from_kernel(kernel, rows, cols, stride).ravel()


@register_intrinsic("WMMA2Mem")
def _wmma2mem(interp: Interpreter, call: E.Call, env):
    """Fragment -> register read; identity in simulation.

    Survives selection when a fused post-op (bias, ReLU, coring) consumes
    an accumulator tile pointwise instead of via wmma.store.
    """
    return interp.eval_expr(call.args[0], env)


@register_intrinsic("TileExpand")
def _tile_expand(interp: Interpreter, call: E.Call, env):
    """``TileExpand(tile, valid_cols, cols)``: pad each row with zeros.

    Used for strided-convolution tiles where only the first
    ``valid_cols`` columns of each row hold real outputs.
    """
    tile = interp.eval_vector(call.args[0], env)
    valid = interp.eval_int(call.args[1], env)
    cols = interp.eval_int(call.args[2], env)
    return tile_expand(tile, valid, cols).ravel()


@register_intrinsic("TileCompact")
def _tile_compact(interp: Interpreter, call: E.Call, env):
    """``TileCompact(tile, cols, valid_cols)``: drop the padding columns."""
    tile = interp.eval_vector(call.args[0], env)
    cols = interp.eval_int(call.args[1], env)
    valid = interp.eval_int(call.args[2], env)
    return tile_compact(tile, cols, valid).ravel()


@register_intrinsic("MultiphaseShuffle")
def _multiphase_shuffle(interp: Interpreter, call: E.Call, env):
    """``MultiphaseShuffle(buffer, base, rows, cols, taps, factor)``.

    Builds the upsampling coefficient matrix A_up of §V-B: output column
    ``j`` covers output pixel ``j`` whose phase is ``j % factor`` and
    whose input offset advances by ``j // factor``.  Entry ``[c, j]``
    holds ``K[factor*(c - j//factor) + j%factor]`` when that tap index is
    in range — the multiphase filter-bank decomposition of the kernel.
    """
    name_expr = call.args[0]
    if not isinstance(name_expr, E.StringImm):
        raise ShuffleError(
            "MultiphaseShuffle expects a buffer name as first argument"
        )
    buf = interp.buffer(name_expr.value)
    base = interp.eval_int(call.args[1], env)
    rows = interp.eval_int(call.args[2], env)
    cols = interp.eval_int(call.args[3], env)
    taps = interp.eval_int(call.args[4], env)
    factor = interp.eval_int(call.args[5], env)
    idx = base + np.arange(taps)
    kernel = buf.gather(idx)
    interp.counters.add_load(
        memory_level(buf), idx.size * buf.dtype.bytes_per_lane()
    )
    return multiphase_matrix(kernel, rows, cols, factor).ravel()
