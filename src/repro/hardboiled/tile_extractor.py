"""The tile extractor: HARDBOILED's compiler pass (paper §III).

For every store statement that touches an accelerator-resident buffer it:

1. injects data-movement markers (loads from accelerator buffers are
   wrapped in ``AMX2Mem``/``WMMA2Mem``; values stored to accelerator
   buffers in ``Mem2AMX``/``Mem2WMMA``);
2. encodes the statement into an e-graph and runs the phased rule
   schedule (supporting rules to fixpoint between iterations of the
   axiomatic + application-specific + lowering rules);
3. extracts the cheapest equivalent statement under the AST-size cost
   model and decodes it back to IR;
4. post-processes: ``ExprVar`` temporaries become hoisted allocations
   initialized by their shuffle expression, WMMA statements are wrapped
   in warp-level ``gpu_lane`` loops, and adjacent warp loops are fused
   (the ``FuseGPUThreadLoops`` step of §III-D.1).

A store scheduled into accelerator memory that no rule can map is
reported as unmapped — selection is hit-or-miss by design, because the
schedule has already pinned where the computation must run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Set, Tuple

from ..eqsat import EGraph, extract_best, run_phased
from ..ir import (
    Allocate,
    Block,
    Call,
    Evaluate,
    Expr,
    For,
    ForKind,
    IntImm,
    Load,
    MemoryType,
    Ramp,
    Stmt,
    Store,
    StringImm,
    free_variables,
)
from ..ir.visitor import IRMutator, IRVisitor
from ..lowering.pipeline import Lowered
from ..targets.wmma import WARP_SIZE
from .cost import hardboiled_cost_model
from .encode import Encoder, contains_movement, decode_stmt, movement_wrapper
from .rules_amx import amx_rules
from .rules_axiomatic import axiomatic_rules
from .rules_dp4a import dp4a_rules
from .rules_supporting import supporting_rules
from .rules_wmma import wmma_rules

_KIND_BY_MEMORY = {
    MemoryType.AMX_TILE: "amx",
    MemoryType.WMMA_ACCUMULATOR: "wmma",
    MemoryType.DP4A_ACCUMULATOR: "dp4a",
}
_WRAP_IN = {"amx": "Mem2AMX", "wmma": "Mem2WMMA", "dp4a": "Mem2DP4A"}
_WRAP_OUT = {"amx": "AMX2Mem", "wmma": "WMMA2Mem", "dp4a": "DP4A2Mem"}
_APP_RULES = {"amx": amx_rules, "wmma": wmma_rules, "dp4a": dp4a_rules}


@dataclass
class StoreSelection:
    """Outcome of instruction selection for one store statement."""

    original: Store
    kind: str
    mapped: bool
    stmt: Stmt
    eqsat_seconds: float = 0.0
    egraph_classes: int = 0
    egraph_nodes: int = 0
    matches: int = 0


@dataclass
class SelectionReport:
    selections: List[StoreSelection] = field(default_factory=list)
    eqsat_seconds: float = 0.0
    total_seconds: float = 0.0
    #: saturation-phase breakdown summed over stores (match/apply/rebuild
    #: seconds plus round and match counters) — see ScheduleStats.profile
    eqsat_profile: Dict[str, float] = field(default_factory=dict)
    # -- warm-start telemetry (populated by repro.service) -------------------
    #: ``"hit"`` (selection skipped, artifact restored), ``"miss"``
    #: (selection ran, artifact persisted), or None (no artifact store)
    artifact_cache: Optional[str] = None
    #: content digest of the artifact key consulted
    artifact_key: Optional[str] = None
    #: seconds spent loading + decoding the artifact on a hit
    restore_seconds: float = 0.0
    #: per-store rows ``{"name", "kind", "mapped"}`` restored from an
    #: artifact (the live ``selections`` are not persisted — only their
    #: outcome is)
    restored_stores: List[Dict[str, object]] = field(default_factory=list)

    def _merge_profile(self, profile: Dict[str, float]) -> None:
        for key, value in profile.items():
            self.eqsat_profile[key] = self.eqsat_profile.get(key, 0) + value

    def _mapped_flags(self) -> List[bool]:
        return [bool(s.mapped) for s in self.selections] + [
            bool(row["mapped"]) for row in self.restored_stores
        ]

    @property
    def num_stores(self) -> int:
        return len(self.selections) + len(self.restored_stores)

    @property
    def num_mapped(self) -> int:
        return sum(self._mapped_flags())

    @property
    def all_mapped(self) -> bool:
        return all(self._mapped_flags())

    @property
    def any_mapped(self) -> bool:
        return any(self._mapped_flags())

    def store_rows(self) -> List[Dict[str, object]]:
        """``{"name", "kind", "mapped"}`` per store — the persistable
        outcome of selection, whether it ran live or was restored."""
        return [
            {"name": s.original.name, "kind": s.kind, "mapped": s.mapped}
            for s in self.selections
        ] + [dict(row) for row in self.restored_stores]

    def summary(self) -> str:
        lines = []
        for s in self.selections:
            status = "mapped" if s.mapped else "NOT MAPPED"
            lines.append(
                f"store to {s.original.name!r} [{s.kind}]: {status}"
                f" ({s.eqsat_seconds * 1e3:.1f} ms,"
                f" {s.egraph_nodes} e-nodes)"
            )
        for row in self.restored_stores:
            status = "mapped" if row["mapped"] else "NOT MAPPED"
            lines.append(
                f"store to {row['name']!r} [{row['kind']}]: {status}"
                " (restored from artifact cache)"
            )
        if self.artifact_cache is not None:
            key = (self.artifact_key or "")[:12]
            lines.append(
                f"artifact cache: {self.artifact_cache} [{key}...]"
                f" ({self.restore_seconds * 1e3:.1f} ms restore)"
                if self.artifact_cache == "hit"
                else f"artifact cache: {self.artifact_cache} [{key}...]"
            )
        return "\n".join(lines)


class SelectionError(RuntimeError):
    pass


class _AccelLoadWrapper(IRMutator):
    """Wraps loads from accelerator buffers in outbound movement markers."""

    def __init__(self, memory_of: Dict[str, MemoryType]):
        self.memory_of = memory_of

    def mutate_Load(self, node: Load):
        index = self.mutate(node.index)
        if index is not node.index:
            node = Load(node.dtype, node.name, index)
        kind = _KIND_BY_MEMORY.get(
            self.memory_of.get(node.name, MemoryType.HEAP)
        )
        if kind is not None:
            return movement_wrapper(_WRAP_OUT[kind], node)
        return node


@lru_cache(maxsize=None)
def _rules_for(kind: str):
    """(main rules, supporting rules) for one accelerator kind.

    Cached: the rule objects carry their compiled query/action programs
    (see ``eqsat.rules.Rule.compiled``), so sharing them across stores
    means each rule is lowered exactly once per process.
    """
    ax_rules, _ = axiomatic_rules()
    sup_rules, _ = supporting_rules()
    app_rules, _ = _APP_RULES[kind]()
    return tuple(ax_rules) + tuple(app_rules), tuple(sup_rules)


class TileExtractor:
    """Runs instruction selection over a lowered pipeline."""

    def __init__(
        self,
        lowered: Lowered,
        iterations: int = 14,
        strict: bool = False,
    ) -> None:
        self.lowered = lowered
        self.iterations = iterations
        self.strict = strict
        self.memory_of: Dict[str, MemoryType] = {
            name: info.memory_type
            for name, info in lowered.realizations.items()
        }
        self.report = SelectionReport()
        self._tmp_counter = 0
        self._pending_exprvars: Dict[Expr, str] = {}

    # -- public ------------------------------------------------------------

    def run(self) -> Tuple[Stmt, SelectionReport]:
        start = time.perf_counter()
        stmt = _StoreRewriter(self).mutate(self.lowered.stmt)
        stmt = _materialize_exprvars(stmt, self._pending_exprvars)
        stmt = fuse_gpu_lane_loops(stmt)
        self.report.total_seconds = time.perf_counter() - start
        if self.strict and not self.report.all_mapped:
            failed = [
                s.original.name
                for s in self.report.selections
                if not s.mapped
            ]
            raise SelectionError(
                "instruction selection failed for accelerator-scheduled"
                f" stores into {failed} — no lowering rule matched"
            )
        return stmt, self.report

    # -- per-store selection ---------------------------------------------------

    def store_kind(self, store: Store) -> Optional[str]:
        kind = _KIND_BY_MEMORY.get(
            self.memory_of.get(store.name, MemoryType.HEAP)
        )
        if kind is not None:
            return kind
        kinds = set()

        class V(IRVisitor):
            memory_of = self.memory_of

            def visit_Load(v_self, node: Load):
                k = _KIND_BY_MEMORY.get(
                    self.memory_of.get(node.name, MemoryType.HEAP)
                )
                if k is not None:
                    kinds.add(k)
                v_self.visit(node.index)

        V().visit(store.value)
        if len(kinds) > 1:
            raise SelectionError(
                f"store into {store.name!r} mixes accelerator kinds"
                f" {sorted(kinds)}"
            )
        return kinds.pop() if kinds else None

    def prepare_store(self, store: Store) -> Optional[Tuple[str, Store]]:
        """Movement-marker injection for one store: ``(kind, wrapped)``.

        Exposed separately so benchmarks can saturate the exact same
        wrapped stores through different engines.
        """
        kind = self.store_kind(store)
        if kind is None:
            return None
        value = _AccelLoadWrapper(self.memory_of).mutate(store.value)
        if (
            self.memory_of.get(store.name, MemoryType.HEAP)
            in _KIND_BY_MEMORY
        ):
            value = movement_wrapper(_WRAP_IN[kind], value)
        return kind, Store(store.name, store.index, value)

    def select_store(self, store: Store) -> Tuple[Stmt, StoreSelection]:
        # 1. inject data movement markers
        prepared = self.prepare_store(store)
        if prepared is None:
            return store, None
        kind, wrapped = prepared

        # 2. equality saturation
        start = time.perf_counter()
        egraph = EGraph()
        root = Encoder(egraph).stmt(wrapped)
        main_rules, sup_rules = _rules_for(kind)
        stats = run_phased(
            egraph, main_rules, sup_rules, iterations=self.iterations
        )
        # 3. extraction
        best = extract_best(egraph, root, hardboiled_cost_model())
        seconds = time.perf_counter() - start
        self.report.eqsat_seconds += seconds
        self.report._merge_profile(stats.profile())

        mapped = not contains_movement(best, kind)
        if mapped:
            stmt: Stmt = decode_stmt(best)
            stmt = self._collect_exprvars(stmt)
            if kind == "wmma":
                stmt = For(
                    "thread_id_x",
                    IntImm(0),
                    IntImm(WARP_SIZE),
                    ForKind.GPU_LANE,
                    stmt,
                )
        else:
            stmt = store  # keep the original, marker-free form
        selection = StoreSelection(
            original=store,
            kind=kind,
            mapped=mapped,
            stmt=stmt,
            eqsat_seconds=seconds,
            egraph_classes=egraph.num_classes(),
            egraph_nodes=egraph.num_nodes(),
            matches=stats.total_matches,
        )
        return stmt, selection

    def _collect_exprvars(self, stmt: Stmt) -> Stmt:
        extractor = self

        class Collector(IRMutator):
            def mutate_Call(self, node: Call):
                args = tuple(self.mutate(a) for a in node.args)
                new_args = []
                for a in args:
                    if isinstance(a, Call) and a.name == "$ExprVar":
                        inner = a.args[0]
                        name = extractor._pending_exprvars.get(inner)
                        if name is None:
                            name = f"hb_tmp{extractor._tmp_counter}"
                            extractor._tmp_counter += 1
                            extractor._pending_exprvars[inner] = name
                        new_args.append(StringImm(name))
                    else:
                        new_args.append(a)
                import dataclasses

                if tuple(new_args) != node.args:
                    return dataclasses.replace(node, args=tuple(new_args))
                return node

        return Collector().mutate(stmt)


class _StoreRewriter(IRMutator):
    def __init__(self, extractor: TileExtractor):
        self.extractor = extractor

    def mutate_Store(self, node: Store):
        stmt, selection = self.extractor.select_store(node)
        if selection is not None:
            self.extractor.report.selections.append(selection)
        return stmt


def _materialize_exprvars(
    stmt: Stmt, pending: Dict[Expr, str]
) -> Stmt:
    """Allocate + initialize each ExprVar, hoisted as far out as possible."""
    if not pending:
        return stmt
    # only loop variables constrain placement; symbols like image strides
    # are bound in the top-level environment
    loop_vars: Set[str] = set()

    class LoopCollector(IRVisitor):
        def visit_For(self, node: For):
            loop_vars.add(node.name)
            self.visit(node.body)

    LoopCollector().visit(stmt)
    remaining = {
        name: (expr, free_variables(expr) & loop_vars)
        for expr, name in pending.items()
    }

    def wrap(body: Stmt, names: List[str]) -> Stmt:
        for name in names:
            expr, _ = remaining[name]
            lanes = expr.type.lanes
            init = Store(name, Ramp(IntImm(0), IntImm(1), lanes), expr)
            body = Allocate(
                name,
                expr.type.element_of(),
                (IntImm(lanes),),
                MemoryType.STACK,
                Block.make([init, body]),
            )
        return body

    class Inserter(IRMutator):
        def __init__(self):
            self.bound: Set[str] = set()
            self.placed: Set[str] = set()

        def mutate_For(self, node: For):
            self.bound.add(node.name)
            body = self.mutate(node.body)
            ready = [
                name
                for name, (expr, needed) in remaining.items()
                if name not in self.placed
                and node.name in needed
                and needed <= self.bound
            ]
            self.placed.update(ready)
            body = wrap(body, ready)
            self.bound.discard(node.name)
            if body is node.body:
                return node
            return For(node.name, node.min_expr, node.extent, node.kind, body)

    inserter = Inserter()
    stmt = inserter.mutate(stmt)
    top_level = [
        name
        for name, (expr, needed) in remaining.items()
        if name not in inserter.placed
    ]
    return wrap(stmt, top_level)


def fuse_gpu_lane_loops(stmt: Stmt) -> Stmt:
    """Merge adjacent warp-level lane loops (FuseGPUThreadLoops)."""

    class Fuser(IRMutator):
        def mutate_Block(self, node: Block):
            parts = [self.mutate(p) for p in node.stmts]
            fused: List[Stmt] = []
            for part in parts:
                if (
                    fused
                    and isinstance(part, For)
                    and part.kind is ForKind.GPU_LANE
                    and isinstance(fused[-1], For)
                    and fused[-1].kind is ForKind.GPU_LANE
                    and fused[-1].name == part.name
                    and fused[-1].extent == part.extent
                ):
                    prev = fused.pop()
                    fused.append(
                        For(
                            prev.name,
                            prev.min_expr,
                            prev.extent,
                            prev.kind,
                            Block.make([prev.body, part.body]),
                        )
                    )
                else:
                    fused.append(part)
            return Block.make(fused)

    return Fuser().mutate(stmt)


def select_instructions(
    lowered: Lowered,
    iterations: int = 14,
    strict: bool = False,
    verify: bool = False,
) -> Tuple[Lowered, SelectionReport]:
    """Run HARDBOILED over a lowered pipeline.

    Returns a new :class:`Lowered` whose statement uses tensor intrinsics
    wherever the schedule requested accelerator storage, plus a report of
    which stores mapped (and how long EqSat took).

    ``verify=True`` gates the extracted statement through the static IR
    verifier (:func:`repro.analysis.check_ir`, ``phase="tensorized"``):
    an unsound extraction — illegal accumulator access, broken scoping,
    out-of-bounds addressing introduced by a rewrite — raises
    :class:`repro.analysis.AnalysisError` instead of miscomputing.
    """
    extractor = TileExtractor(lowered, iterations=iterations, strict=strict)
    stmt, report = extractor.run()
    import dataclasses
    import time as _time

    new_lowered = dataclasses.replace(lowered, stmt=stmt)
    new_lowered.pass_seconds = dict(lowered.pass_seconds)
    new_lowered.pass_seconds["hardboiled_eqsat"] = report.eqsat_seconds
    new_lowered.pass_seconds["hardboiled_total"] = report.total_seconds
    if verify:
        from ..analysis import check_ir

        start = _time.perf_counter()
        check_ir(
            stmt,
            lowered.realizations,
            phase="tensorized",
            context=lowered.output.name,
            unmapped={
                row["name"]
                for row in report.store_rows()
                if not row["mapped"]
            },
        )
        new_lowered.pass_seconds["verify"] = _time.perf_counter() - start
    return new_lowered, report
