"""Axiomatic rules: vector-identity rewrites (paper Fig. 10c).

These make pattern matching robust to the simplifier's obscuring
rewrites: they push broadcasts back inside loads/casts, re-nest flat
ramps into tile-shaped index vectors, fold broadcast-adds into ramp
bases, and cancel adjacent data movements.  Inside EqSat their
application order cannot cause a phase-ordering problem.
"""

from __future__ import annotations

from ..eqsat import parse_program

AXIOMATIC_PROGRAM = """
(relation has-lanes (Expr i64))

;; commutativity (the paper implements commutativity but not
;; associativity, which can blow up the e-graph)
(rewrite (Add x y) (Add y x))
(rewrite (Mul x y) (Mul y x))

;; broadcast algebra
(rewrite (Broadcast (Broadcast x l1) l2) (Broadcast x (* l1 l2)))
(rewrite (Broadcast x 1) x)
(rewrite (Ramp x s 1) x)

;; push broadcast inside load (undoes the simplifier's
;; broadcast-of-load preference)
(rewrite (Broadcast (Load type name index) lanes)
         (Load (MultiplyLanes type lanes) name (Broadcast index lanes)))

;; push broadcast inside cast
(rewrite (Broadcast (Cast type expr) lanes)
         (Cast (MultiplyLanes type lanes) (Broadcast expr lanes)))

;; fold a broadcast-add into a ramp base: the blocks of the ramp each
;; absorb whole copies of the broadcast payload
(rule ((= e (Add (Ramp base stride count) (Broadcast x bl)))
       (has-lanes base lb)
       (has-lanes x lx)
       (= 0 (% lb lx))
       (= bl (* count (/ lb lx))))
      ((union e (Ramp (Add base (Broadcast x (/ lb lx))) stride count))))

;; additive identities
(rewrite (Add x (Broadcast 0 l)) x)
(rewrite (Add x 0) x)

;; restricted associativity: float a broadcast term outward so sibling
;; broadcasts can meet (full associativity would blow up the e-graph,
;; paper SS A-3; this exchange form is bounded by the add-chain length)
(rewrite (Add (Add a (Broadcast x l)) b)
         (Add (Add a b) (Broadcast x l)))

;; merge sibling broadcasts of equal payload width
(rule ((= e (Add (Broadcast a l) (Broadcast b l)))
       (has-lanes a la)
       (has-lanes b lb)
       (= la lb))
      ((union e (Broadcast (Add a b) l))))

;; sibling hint (paper SS A-3): the inverse of broadcast flattening is
;; not directly applicable (l1*l2 cannot be guessed), but a sibling term
;; with a different count tells us how to nest
(rule ((= e (Add (Broadcast a bla) (Broadcast b blb)))
       (> bla blb)
       (= 0 (% bla blb)))
      ((union e (Add (Broadcast (Broadcast a (/ bla blb)) blb)
                     (Broadcast b blb)))))

;; adjacent data movements cancel
(rewrite (Mem2AMX (AMX2Mem e)) e)
(rewrite (Mem2WMMA (WMMA2Mem e)) e)
(rewrite (Mem2DP4A (DP4A2Mem e)) e)

;; degenerate-pattern recovery (paper SS A-3): the VNNI layout's 2-wide
;; pair dimension appears as %2 and /2 over a flat lane ramp; the
;; VNNI-4 (int8 dp4a) layout does the same with 4-wide groups
(rewrite (Mod (Ramp 0 1 l) (Broadcast 2 l))
         (Broadcast (Ramp 0 1 2) (/ l 2))
         :when ((= 0 (% l 2))))
(rewrite (Div (Ramp 0 1 l) (Broadcast 2 l))
         (Ramp (Broadcast 0 2) (Broadcast 1 2) (/ l 2))
         :when ((= 0 (% l 2))))
(rewrite (Mod (Ramp 0 1 l) (Broadcast 4 l))
         (Broadcast (Ramp 0 1 4) (/ l 4))
         :when ((= 0 (% l 4))))
(rewrite (Div (Ramp 0 1 l) (Broadcast 4 l))
         (Ramp (Broadcast 0 4) (Broadcast 1 4) (/ l 4))
         :when ((= 0 (% l 4))))

;; scale a ramp by a uniform broadcast
(rule ((= e (Mul (Ramp b s c) (Broadcast k bl)))
       (has-lanes b lb)
       (has-lanes k 1)
       (= bl (* c lb)))
      ((union e (Ramp (Mul b (Broadcast k lb))
                      (Mul s (Broadcast k lb)) c))))

;; merge sibling broadcasts under multiplication
(rule ((= e (Mul (Broadcast a l) (Broadcast b l)))
       (has-lanes a la)
       (has-lanes b lb)
       (= la lb))
      ((union e (Broadcast (Mul a b) l))))

;; multiplicative zero
(rewrite (Mul x 0) 0)
(rewrite (Mul x (Broadcast 0 l)) (Broadcast 0 l))

;; re-nest flat dense ramps into 2-D tile index patterns (inverse of
;; the simplifier's dense-ramp flattening); row widths 8 and 16 cover
;; the WMMA and AMX tile geometries
(rewrite (Ramp e 1 l)
         (Ramp (Ramp e 1 16) (Broadcast 16 16) (/ l 16))
         :when ((= 0 (% l 16)) (> l 16)))
(rewrite (Ramp e 1 l)
         (Ramp (Ramp e 1 8) (Broadcast 8 8) (/ l 8))
         :when ((= 0 (% l 8)) (> l 8)))
"""

_cache = None


def axiomatic_rules():
    global _cache
    if _cache is None:
        rules, relations = parse_program(AXIOMATIC_PROGRAM)
        _cache = (rules, relations)
    return _cache
