"""Application-specific and lowering rules for Intel AMX (paper Fig. 10a/b).

The geometry is TDPBF16PS: C[16,16] f32 += A[16,32] bf16 . B[32,16] bf16
(B consumed in the VNNI layout).  Application rules populate the
``amx-A-tile``/``amx-B-tile`` relations with expressions that place each
operand in a tile register (inserting a ``KWayInterleave`` swizzle via an
``ExprVar`` when B is in the standard row-major layout); the lowering
rule rewrites the matched MatMul into ``tile_matmul`` wrapped in
``AMX2Mem``, letting the cancellation axiom erase the data movements the
schedule already pays for.
"""

from __future__ import annotations

from ..eqsat import parse_program

M, N, K = 16, 16, 32
C_LANES = M * N  # 256
MUL_LANES = M * N * K  # 8192
A_LANES = M * K  # 512
B_LANES = K * N  # 512

AMX_PROGRAM = f"""
(relation amx-A-tile (Expr Expr))
(relation amx-B-tile (Expr Expr))

;; --- application-specific rules -------------------------------------

;; A operand in the standard layout: A(r, x) loaded as x-major blocks of
;; r-contiguous rows -> one tile_load
(rule ((= lhs (Load (BFloat16 {MUL_LANES}) A-name
          (Ramp (Broadcast (Ramp A-base 1 {K}) {N})
                (Broadcast A-stride {A_LANES}) {M}))))
      ((amx-A-tile lhs (Call (BFloat16 {A_LANES}) "tile_load"
          (Args A-name A-base A-stride {M} {K})))))

;; B operand in the standard (row-major) layout: HARDBOILED discovers the
;; required swizzle and materializes the VNNI form via KWayInterleave
(rule ((= rhs (Load (BFloat16 {MUL_LANES}) B-name
          (Broadcast (Ramp (Ramp B-base B-stride {K})
                           (Broadcast 1 {K}) {N}) {M}))))
      ((let load-B (Load (BFloat16 {B_LANES}) B-name
          (Ramp (Ramp B-base 1 {N}) (Broadcast B-stride {N}) {K})))
       (let shuffled (ExprVar (Call (BFloat16 {B_LANES}) "KWayInterleave"
          (Args 2 {K} {N} load-B))))
       (amx-B-tile rhs (Call (BFloat16 {B_LANES}) "tile_load"
          (Args shuffled 0 {K} {M} {K})))))

;; B operand already in the VNNI layout: B_vnni(r%2, y, r/2) loads with a
;; three-level nested ramp over (pair, row-pair, column) -> direct
;; tile_load with the row-pair stride, no swizzle
(rule ((= rhs (Load (BFloat16 {MUL_LANES}) B-name
          (Broadcast (Ramp (Ramp (Ramp B-base 1 2)
                                 (Broadcast B-s2 2) {K // 2})
                           (Broadcast B-s1 {K}) {N}) {M}))))
      ((amx-B-tile rhs (Call (BFloat16 {B_LANES}) "tile_load"
          (Args B-name B-base B-s2 {M} {K})))))

;; B operand preloaded into a tile register (Table I "preloading matrix
;; B"): valid only when the *consuming* access pattern is VNNI — a tile
;; already holds raw rows and no swizzle can be applied to it, so
;; standard-layout consumption of a preloaded tile has no rule
(rule ((= rhs (AMX2Mem (Load (BFloat16 {MUL_LANES}) B-name
          (Broadcast (Ramp (Ramp (Ramp B-base 1 2)
                                 (Broadcast B-s2 2) {K // 2})
                           (Broadcast B-s1 {K}) {N}) {M})))))
      ((amx-B-tile rhs (Load (BFloat16 {B_LANES}) B-name
          (Ramp B-base 1 {B_LANES})))))

;; preload itself: copying a (2, N, K/2)-shaped VNNI image into a tile
;; register is one tile_load — the source's three-level access pattern
;; proves the layout.  A row-major 2-D copy into a tile matches no rule:
;; whether the preloaded data should be swizzled is ambiguous (Table I)
(rule ((= s (Store buffer
          (Mem2AMX (Load (BFloat16 {B_LANES}) B-name vnni-idx))
          (Ramp 0 1 {B_LANES})))
       (= vnni-idx (Ramp (Ramp (Ramp B-base 1 2)
                               (Broadcast B-s1 2) {N})
                         (Broadcast B-s2 {K}) {K // 2})))
      ((union s (Store buffer (Call (BFloat16 {B_LANES}) "tile_load"
          (Args B-name B-base B-s2 {K // 2} {K})) (Ramp 0 1 {B_LANES})))))

;; broadcasts distribute over tile-to-memory reads
(rewrite (Broadcast (AMX2Mem e) l) (AMX2Mem (Broadcast e l)))

;; --- lowering rules ---------------------------------------------------

;; MatMul: C + sum(A * B) -> tile_matmul (TDPBF16PS)
(rule ((= e (Add (VectorReduceAdd {C_LANES}
                   (Mul (Cast (Float32 {MUL_LANES}) lhs)
                        (Cast (Float32 {MUL_LANES}) rhs)))
                 C))
       (amx-A-tile lhs amx-A)
       (amx-B-tile rhs amx-B))
      ((let new-e (Call (Float32 {C_LANES}) "tile_matmul"
           (Args (Mem2AMX C) amx-A amx-B {M} {N} {K})))
       (union e (AMX2Mem new-e))))

;; tile initialization: storing broadcast zero into a tile register
(rewrite (Mem2AMX (Broadcast 0.0 {C_LANES}))
         (Call (Float32 {C_LANES}) "tile_zero" (Args {M} {N})))

;; tile store, dense destination
(rule ((= s (Store buffer (AMX2Mem tile) (Ramp base 1 {C_LANES}))))
      ((union s (Evaluate (Call (Float32 1) "tile_store"
          (Args buffer base {N} {M} {N} tile))))))

;; tile store, strided (row-major into a larger matrix)
(rule ((= s (Store buffer (AMX2Mem tile)
          (Ramp (Ramp base 1 {N}) (Broadcast stride {N}) {M}))))
      ((union s (Evaluate (Call (Float32 1) "tile_store"
          (Args buffer base stride {M} {N} tile))))))
"""

_cache = None


def amx_rules():
    global _cache
    if _cache is None:
        _cache = parse_program(
            AMX_PROGRAM, relations={"has-lanes"}
        )
    return _cache
