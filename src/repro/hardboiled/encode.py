"""Encoding Halide IR to EqSat terms and decoding extracted terms back.

The term language follows the paper's Fig. 9: ``Store``/``Evaluate``
statements; ``Load``, ``Cast``, ``Call``, arithmetic, ``Ramp``,
``Broadcast``, ``VectorReduceAdd``, data-movement markers
(``Mem2AMX``/``AMX2Mem``/``Mem2WMMA``/``WMMA2Mem``), variables and
literals.  Types are first-class terms (``(BFloat16 8192)``) so rules can
compute lane counts via ``MultiplyLanes``.

While encoding, the known lane count of every subexpression is asserted
into the ``has-lanes`` relation — the base facts the supporting
(type-analysis) rules extend to rule-created terms.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..eqsat import EGraph, I, F, Sym, T, Term
from ..ir import (
    EQ,
    GE,
    GT,
    LE,
    LT,
    NE,
    Add,
    BFloat,
    Broadcast,
    Call,
    CallType,
    Cast,
    DataType,
    Div,
    Evaluate,
    Expr,
    Float,
    FloatImm,
    Int,
    IntImm,
    Load,
    Max,
    Min,
    Mod,
    Mul,
    Ramp,
    Select,
    Stmt,
    Store,
    StringImm,
    Sub,
    TypeCode,
    UInt,
    Variable,
    VectorReduce,
)

#: data movement marker heads (paper: loc_to_loc)
MOVEMENT_HEADS = (
    "Mem2AMX",
    "AMX2Mem",
    "Mem2WMMA",
    "WMMA2Mem",
    "Mem2DP4A",
    "DP4A2Mem",
)

_BINARY_HEADS = {
    Add: "Add",
    Sub: "Sub",
    Mul: "Mul",
    Div: "Div",
    Mod: "Mod",
    Min: "Min",
    Max: "Max",
    LT: "LT",
    LE: "LE",
    GT: "GT",
    GE: "GE",
    EQ: "EQcmp",
    NE: "NEcmp",
}
_HEAD_TO_BINARY = {v: k for k, v in _BINARY_HEADS.items()}

_TYPE_HEADS = {
    (TypeCode.FLOAT, 64): "Float64",
    (TypeCode.FLOAT, 32): "Float32",
    (TypeCode.FLOAT, 16): "Float16",
    (TypeCode.BFLOAT, 16): "BFloat16",
    (TypeCode.INT, 8): "Int8",
    (TypeCode.INT, 16): "Int16",
    (TypeCode.INT, 32): "Int32",
    (TypeCode.INT, 64): "Int64",
    (TypeCode.UINT, 8): "UInt8",
    (TypeCode.UINT, 1): "Bool1",
}
_HEAD_TO_TYPE = {v: k for k, v in _TYPE_HEADS.items()}


class EncodeError(RuntimeError):
    pass


def encode_type(dtype: DataType) -> Term:
    head = _TYPE_HEADS.get((dtype.code, dtype.bits))
    if head is None:
        raise EncodeError(f"cannot encode type {dtype}")
    return T(head, I(dtype.lanes))


def decode_type(term: Term) -> DataType:
    entry = _HEAD_TO_TYPE.get(term.head)
    if entry is None or len(term.args) != 1:
        raise EncodeError(f"cannot decode type term {term}")
    code, bits = entry
    lanes = int(term.args[0].payload)
    return DataType(code, bits, lanes)


class Encoder:
    """Encodes expressions/statements into an e-graph, seeding has-lanes."""

    def __init__(self, egraph: EGraph) -> None:
        self.egraph = egraph

    def _seed_lanes(self, eclass: int, lanes: int) -> None:
        lit = self.egraph.add_literal("i64", lanes)
        self.egraph.assert_fact("has-lanes", (eclass, lit))

    def expr(self, e: Expr) -> int:
        eclass = self.egraph.add_term(encode_expr(e))
        self._seed_all_lanes(e)
        return eclass

    def _seed_all_lanes(self, e: Expr) -> None:
        import dataclasses

        term = encode_expr(e)
        eclass = self.egraph.add_term(term)
        self._seed_lanes(eclass, e.type.lanes)
        for f in dataclasses.fields(e):
            value = getattr(e, f.name)
            if isinstance(value, Expr):
                self._seed_all_lanes(value)
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, Expr):
                        self._seed_all_lanes(item)

    def stmt(self, s: Stmt) -> int:
        if isinstance(s, Store):
            eclass = self.egraph.add_term(encode_stmt(s))
            self._seed_all_lanes(s.index)
            self._seed_all_lanes(s.value)
            return eclass
        if isinstance(s, Evaluate):
            eclass = self.egraph.add_term(encode_stmt(s))
            self._seed_all_lanes(s.value)
            return eclass
        raise EncodeError(f"cannot encode statement {type(s).__name__}")


def encode_expr(e: Expr) -> Term:
    if isinstance(e, IntImm):
        return I(e.value)
    if isinstance(e, FloatImm):
        return F(e.value)
    if isinstance(e, StringImm):
        return Sym(e.value)
    if isinstance(e, Variable):
        return T("Var", Sym(e.name))
    if isinstance(e, Cast):
        return T("Cast", encode_type(e.dtype), encode_expr(e.value))
    if isinstance(e, Load):
        return T(
            "Load",
            encode_type(e.dtype),
            Sym(e.name),
            encode_expr(e.index),
        )
    if isinstance(e, Ramp):
        return T(
            "Ramp", encode_expr(e.base), encode_expr(e.stride), I(e.count)
        )
    if isinstance(e, Broadcast):
        return T("Broadcast", encode_expr(e.value), I(e.count))
    if isinstance(e, VectorReduce):
        if e.op != "add":
            raise EncodeError(f"cannot encode reduce op {e.op!r}")
        return T("VectorReduceAdd", I(e.result_lanes), encode_expr(e.value))
    if isinstance(e, Call):
        if e.name in MOVEMENT_HEADS:
            return T(e.name, encode_expr(e.args[0]))
        return T(
            "Call",
            encode_type(e.dtype),
            Sym(e.name),
            T("Args", *(encode_expr(a) for a in e.args)),
        )
    if isinstance(e, Select):
        return T(
            "Select",
            encode_expr(e.condition),
            encode_expr(e.true_value),
            encode_expr(e.false_value),
        )
    head = _BINARY_HEADS.get(type(e))
    if head is not None:
        return T(head, encode_expr(e.a), encode_expr(e.b))
    raise EncodeError(f"cannot encode {type(e).__name__}")


def encode_stmt(s: Stmt) -> Term:
    if isinstance(s, Store):
        return T(
            "Store", Sym(s.name), encode_expr(s.value), encode_expr(s.index)
        )
    if isinstance(s, Evaluate):
        return T("Evaluate", encode_expr(s.value))
    raise EncodeError(f"cannot encode statement {type(s).__name__}")


def movement_wrapper(kind: str, value: Expr) -> Call:
    """Wrap an expression in a data-movement marker call."""
    if kind not in MOVEMENT_HEADS:
        raise EncodeError(f"unknown movement marker {kind!r}")
    return Call(value.type, kind, (value,), CallType.INTRINSIC)


#: markers whose survival means selection FAILED, per accelerator kind.
#: An AMX tile can only reach memory through tile_store, so a surviving
#: AMX2Mem is unrealizable; WMMA fragments live in per-thread registers,
#: so reading one pointwise (WMMA2Mem) is legal — it is how fused
#: post-ops (bias/ReLU, coring) consume accumulator tiles.  DP4A
#: accumulators likewise live in ordinary vector registers (there is no
#: dedicated tile file), so outbound DP4A2Mem reads are legal too.
FATAL_MARKERS = {
    "amx": ("Mem2AMX", "AMX2Mem"),
    "wmma": ("Mem2WMMA",),
    "dp4a": ("Mem2DP4A",),
}


def contains_movement(term: Term, kind: str = None) -> bool:
    """True when a fatal data-movement marker survives in a term."""
    heads = MOVEMENT_HEADS if kind is None else FATAL_MARKERS[kind]
    if term.head in heads:
        return True
    return any(contains_movement(a, kind) for a in term.args)


def decode_expr(term: Term) -> Expr:
    if term.is_literal():
        kind, value = term.head
        if kind == "i64":
            return IntImm(int(value))
        if kind == "f64":
            return FloatImm(float(value))
        if kind == "str":
            return StringImm(str(value))
        raise EncodeError(f"unknown literal kind {kind!r}")
    head = term.head
    if head == "Var":
        return Variable(str(term.args[0].payload))
    if head == "Cast":
        return Cast(decode_type(term.args[0]), decode_expr(term.args[1]))
    if head == "Load":
        return Load(
            decode_type(term.args[0]),
            str(term.args[1].payload),
            decode_expr(term.args[2]),
        )
    if head == "Ramp":
        return Ramp(
            decode_expr(term.args[0]),
            decode_expr(term.args[1]),
            int(term.args[2].payload),
        )
    if head == "Broadcast":
        return Broadcast(decode_expr(term.args[0]), int(term.args[1].payload))
    if head == "VectorReduceAdd":
        return VectorReduce(
            "add", decode_expr(term.args[1]), int(term.args[0].payload)
        )
    if head == "Call":
        dtype = decode_type(term.args[0])
        name = str(term.args[1].payload)
        args_term = term.args[2]
        if args_term.head != "Args":
            raise EncodeError(f"malformed Call term {term}")
        args = tuple(decode_expr(a) for a in args_term.args)
        return Call(dtype, name, args, CallType.INTRINSIC)
    if head == "ExprVar":
        inner = decode_expr(term.args[0])
        return Call(inner.type, "$ExprVar", (inner,), CallType.INTRINSIC)
    if head in MOVEMENT_HEADS:
        inner = decode_expr(term.args[0])
        return Call(inner.type, head, (inner,), CallType.INTRINSIC)
    if head == "Select":
        return Select(
            decode_expr(term.args[0]),
            decode_expr(term.args[1]),
            decode_expr(term.args[2]),
        )
    binary = _HEAD_TO_BINARY.get(head)
    if binary is not None:
        return binary(decode_expr(term.args[0]), decode_expr(term.args[1]))
    raise EncodeError(f"cannot decode term head {head!r}")


def decode_stmt(term: Term) -> Stmt:
    if term.head == "Store":
        return Store(
            str(term.args[0].payload),
            decode_expr(term.args[2]),
            decode_expr(term.args[1]),
        )
    if term.head == "Evaluate":
        return Evaluate(decode_expr(term.args[0]))
    raise EncodeError(f"cannot decode statement term {term.head!r}")
